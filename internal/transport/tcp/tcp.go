// Package tcp is the multi-process delivery backend of the engine's
// transport boundary: the clique's nodes run as separate OS processes
// (cmd/lapccnode) connected by a full TCP mesh, and the engine side acts as
// the round coordinator. Every frame is length-prefixed and checksummed
// (internal/transport's codec), chunk streams between peers are sequenced
// and acknowledged, and unacknowledged chunks are retransmitted with
// exponential backoff — the reliable-delivery protocol the in-process
// simulator models analytically, promoted to the actual correctness layer of
// the delivery loop.
//
// The delivery contract matches every other backend bit for bit: inboxes per
// destination in ascending source order, per-source send order preserved.
// The differential suites pin solver outputs and charged ledgers across
// local, Mem, and TCP runs.
//
// Topology: P worker processes serve any logical node count n; logical node
// v is owned by process v mod P. One Deliver is one barrier:
//
//	coordinator --Round--> every process   (its owned sources' sends)
//	process     --Data---> peer processes  (chunked, sequenced, acked,
//	                                        retransmitted on timeout)
//	process     --Inbox--> coordinator     (its shard, wire stats piggybacked)
//
// The coordinator concatenates shards in process order and stable-sorts each
// destination's messages by source, which reproduces the in-process merge
// order exactly.
package tcp

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"sync"
	"time"

	"lapcc/internal/cc"
	"lapcc/internal/transport"
)

// Options configures the coordinator.
type Options struct {
	// Procs is the number of worker processes (default 4). Logical node v
	// is owned by process v mod Procs.
	Procs int
	// Binary is the lapccnode worker binary to exec, one process per
	// worker. Empty runs the workers as in-process goroutines speaking the
	// same protocol over real loopback sockets — same frames, same barrier,
	// no process isolation (used by tests and the benchmark suite).
	Binary string
	// AckTimeout is the base retransmission timeout (default 200ms,
	// doubled per wave).
	AckTimeout time.Duration
	// MaxRetries bounds the retransmission waves per stream (default 8).
	MaxRetries int
	// Stderr receives the worker processes' stderr (default os.Stderr).
	Stderr io.Writer

	// dropData, test-only (in-process workers): return true to suppress a
	// data frame send, forcing the retransmission path.
	dropData func(round uint64, from, to int32, seq uint32, wave int) bool
}

func (o *Options) defaults() {
	if o.Procs <= 0 {
		o.Procs = 4
	}
	if o.AckTimeout <= 0 {
		o.AckTimeout = 200 * time.Millisecond
	}
	if o.MaxRetries <= 0 {
		o.MaxRetries = 8
	}
	if o.Stderr == nil {
		o.Stderr = os.Stderr
	}
}

// owner maps a logical clique node to its worker process.
func owner(v int32, procs int) int32 { return v % int32(procs) }

// Transport is the coordinator side of the multi-process backend. It
// implements cc.Transport; Deliver calls serialize on an internal lock (one
// barrier at a time, matching the synchronous model).
type Transport struct {
	opts  Options
	procs int

	ln    net.Listener
	conns []net.Conn
	rds   []*bufio.Reader
	cmds  []*exec.Cmd
	wg    sync.WaitGroup // in-process workers

	mu     sync.Mutex
	round  uint64
	closed bool
	cum    cc.DeliveryStats // cumulative across rounds
}

// New boots a coordinator and its worker processes and blocks until the full
// mesh is connected and every worker reported Ready.
func New(opts Options) (*Transport, error) {
	opts.defaults()
	t := &Transport{opts: opts, procs: opts.Procs}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("tcp: coordinator listen: %w", err)
	}
	t.ln = ln
	coordAddr := ln.Addr().String()

	if opts.Binary != "" {
		t.cmds = make([]*exec.Cmd, t.procs)
		for i := 0; i < t.procs; i++ {
			cmd := exec.Command(opts.Binary,
				"-coord", coordAddr, "-id", strconv.Itoa(i), "-procs", strconv.Itoa(t.procs))
			cmd.Stderr = opts.Stderr
			if err := cmd.Start(); err != nil {
				t.Close()
				return nil, fmt.Errorf("tcp: starting worker %d: %w", i, err)
			}
			t.cmds[i] = cmd
		}
	} else {
		no := nodeOptions{
			ackTimeout: opts.AckTimeout,
			maxRetries: opts.MaxRetries,
			dropData:   opts.dropData,
		}
		for i := 0; i < t.procs; i++ {
			t.wg.Add(1)
			go func(id int) {
				defer t.wg.Done()
				if err := runNode(coordAddr, id, t.procs, no); err != nil {
					fmt.Fprintf(opts.Stderr, "tcp: in-process worker %d: %v\n", id, err)
				}
			}(i)
		}
	}

	if err := t.bootstrap(); err != nil {
		t.Close()
		return nil, err
	}
	return t, nil
}

// bootstrap accepts the worker connections, distributes the mesh address
// table, and waits for every worker's Ready.
func (t *Transport) bootstrap() error {
	t.conns = make([]net.Conn, t.procs)
	t.rds = make([]*bufio.Reader, t.procs)
	addrs := make([]string, t.procs)
	deadline := time.Now().Add(30 * time.Second)
	for i := 0; i < t.procs; i++ {
		if l, ok := t.ln.(*net.TCPListener); ok {
			l.SetDeadline(deadline)
		}
		conn, err := t.ln.Accept()
		if err != nil {
			return fmt.Errorf("tcp: accepting worker %d/%d: %w", i, t.procs, err)
		}
		rd := bufio.NewReader(conn)
		f, err := transport.ReadFrame(rd)
		if err != nil {
			return fmt.Errorf("tcp: worker hello: %w", err)
		}
		if f.Type != transport.FrameHello || f.Node < 0 || int(f.Node) >= t.procs || t.conns[f.Node] != nil {
			return fmt.Errorf("tcp: bad hello (type %d, node %d)", f.Type, f.Node)
		}
		t.conns[f.Node] = conn
		t.rds[f.Node] = rd
		addrs[f.Node] = f.Addr
	}
	for i, conn := range t.conns {
		if _, err := transport.WriteFrame(conn, &transport.Frame{Type: transport.FramePeers, Addrs: addrs}); err != nil {
			return fmt.Errorf("tcp: sending peer table to worker %d: %w", i, err)
		}
	}
	for i := range t.conns {
		f, err := transport.ReadFrame(t.rds[i])
		if err != nil {
			return fmt.Errorf("tcp: waiting for worker %d ready: %w", i, err)
		}
		if f.Type == transport.FrameError {
			return fmt.Errorf("tcp: worker %d failed during mesh bootstrap: %s", i, f.Addr)
		}
		if f.Type != transport.FrameReady {
			return fmt.Errorf("tcp: worker %d sent frame type %d instead of ready", i, f.Type)
		}
	}
	return nil
}

// Deliver implements cc.Transport: one synchronous barrier across the worker
// processes. The round argument is informational (engine rounds restart per
// Run); the coordinator sequences barriers with its own monotone counter.
func (t *Transport) Deliver(_ int, n int, out []cc.Outbox) ([][]cc.Message, cc.DeliveryStats, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, cc.DeliveryStats{}, errors.New("tcp: transport is closed")
	}
	rc := t.round
	t.round++

	// Split the round's sends by owning process, preserving the global
	// ascending-source order within each process's list.
	perProc := make([][]transport.Msg, t.procs)
	dc := make([]int, n)
	total := 0
	for _, ob := range out {
		for _, om := range ob.Msgs {
			if om.To < 0 || int(om.To) >= n {
				return nil, cc.DeliveryStats{}, fmt.Errorf("tcp: recipient %d out of range (n=%d)", om.To, n)
			}
			p := owner(om.From, t.procs)
			perProc[p] = append(perProc[p], transport.Msg{From: om.From, To: om.To, Data: ob.Data(om)})
			dc[om.To]++
			total++
		}
	}
	for p := 0; p < t.procs; p++ {
		if _, err := transport.WriteFrame(t.conns[p], &transport.Frame{
			Type: transport.FrameRound, Round: rc, Msgs: perProc[p],
		}); err != nil {
			return nil, cc.DeliveryStats{}, fmt.Errorf("tcp: sending round %d to worker %d: %w", rc, p, err)
		}
	}

	// Collect every worker's inbox shard. Shards arrive in any order across
	// connections but reading sequentially is fine: TCP buffers them.
	shards := make([][]transport.Msg, t.procs)
	stats := cc.DeliveryStats{Messages: int64(total)}
	for p := 0; p < t.procs; p++ {
		f, err := transport.ReadFrame(t.rds[p])
		if err != nil {
			return nil, cc.DeliveryStats{}, fmt.Errorf("tcp: reading inbox of worker %d in round %d: %w", p, rc, err)
		}
		if f.Type == transport.FrameError {
			return nil, cc.DeliveryStats{}, fmt.Errorf("tcp: worker %d failed in round %d: %s", p, rc, f.Addr)
		}
		if f.Type != transport.FrameInbox || f.Round != rc {
			return nil, cc.DeliveryStats{}, fmt.Errorf("tcp: worker %d sent frame type %d (round %d) instead of inbox for round %d", p, f.Type, f.Round, rc)
		}
		shards[p] = f.Msgs
		stats.Frames += int64(f.Stats.Frames)
		stats.FrameBytes += int64(f.Stats.FrameBytes)
		stats.Retransmits += int64(f.Stats.Retransmits)
		stats.Acks += int64(f.Stats.Acks)
	}

	// Assemble: process order first, then a stable per-destination sort by
	// source. Messages sharing (source, destination) travel in one chunk
	// stream, so stability preserves their send order — together this
	// reproduces the in-process merge order exactly.
	inboxes := make([][]cc.Message, n)
	for d := 0; d < n; d++ {
		if dc[d] > 0 {
			inboxes[d] = make([]cc.Message, 0, dc[d])
		}
	}
	got := 0
	for p := 0; p < t.procs; p++ {
		for _, wm := range shards[p] {
			if wm.To < 0 || int(wm.To) >= n {
				return nil, cc.DeliveryStats{}, fmt.Errorf("tcp: worker %d delivered recipient %d out of range", p, wm.To)
			}
			inboxes[wm.To] = append(inboxes[wm.To], cc.Message{From: int(wm.From), Data: wm.Data})
			got++
		}
	}
	if got != total {
		return nil, cc.DeliveryStats{}, fmt.Errorf("tcp: round %d delivered %d of %d messages", rc, got, total)
	}
	for d := 0; d < n; d++ {
		msgs := inboxes[d]
		sort.SliceStable(msgs, func(i, j int) bool { return msgs[i].From < msgs[j].From })
	}
	t.cum.Messages += stats.Messages
	t.cum.Frames += stats.Frames
	t.cum.FrameBytes += stats.FrameBytes
	t.cum.Retransmits += stats.Retransmits
	t.cum.Acks += stats.Acks
	return inboxes, stats, nil
}

// Stats returns the cumulative delivery counters across all rounds.
func (t *Transport) Stats() cc.DeliveryStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cum
}

// Close shuts the workers down and releases every connection. Safe to call
// more than once and on a partially constructed transport.
func (t *Transport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()

	for _, conn := range t.conns {
		if conn != nil {
			transport.WriteFrame(conn, &transport.Frame{Type: transport.FrameShutdown})
		}
	}
	var firstErr error
	for i, cmd := range t.cmds {
		if cmd == nil {
			continue
		}
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case err := <-done:
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("tcp: worker %d exit: %w", i, err)
			}
		case <-time.After(5 * time.Second):
			cmd.Process.Kill()
			<-done
			if firstErr == nil {
				firstErr = fmt.Errorf("tcp: worker %d did not exit; killed", i)
			}
		}
	}
	for _, conn := range t.conns {
		if conn != nil {
			conn.Close()
		}
	}
	if t.ln != nil {
		t.ln.Close()
	}
	t.wg.Wait() // in-process workers exit on conn close/shutdown
	return firstErr
}

// Procs returns the worker process count.
func (t *Transport) Procs() int { return t.procs }
