package linalg

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"lapcc/internal/graph"
)

// bigN is several reduce blocks long plus a ragged tail, so the blocked
// kernels genuinely split work and the fixed partition's last block is
// partial.
const bigN = 3*reduceBlock + 137

func randomVec(n int, seed int64) Vec {
	rng := rand.New(rand.NewSource(seed))
	v := NewVec(n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestResolveWorkers(t *testing.T) {
	if got := ResolveWorkers(1); got != 1 {
		t.Fatalf("ResolveWorkers(1) = %d", got)
	}
	if got := ResolveWorkers(5); got != 5 {
		t.Fatalf("ResolveWorkers(5) = %d", got)
	}
	gmp := runtime.GOMAXPROCS(0)
	if got := ResolveWorkers(0); got != gmp {
		t.Fatalf("ResolveWorkers(0) = %d, want GOMAXPROCS %d", got, gmp)
	}
	if got := ResolveWorkers(-3); got != gmp {
		t.Fatalf("ResolveWorkers(-3) = %d, want GOMAXPROCS %d", got, gmp)
	}
}

func TestSharedPool(t *testing.T) {
	if p := SharedPool(1); p != nil {
		t.Fatalf("SharedPool(1) = %v, want nil (sequential runtime)", p)
	}
	p := SharedPool(4)
	if p == nil || p.Workers() != 4 {
		t.Fatalf("SharedPool(4).Workers() = %d", p.Workers())
	}
	if again := SharedPool(4); again != p {
		t.Fatal("SharedPool(4) did not return the registered pool")
	}
	var nilPool *Pool
	if nilPool.Workers() != 1 {
		t.Fatalf("nil pool Workers() = %d, want 1", nilPool.Workers())
	}
}

// TestTreeReduce pins the fixed combine schedule: pairwise in block order,
// odd leftover carried to the next level. The schedule is part of the
// numeric contract — changing it changes the bits of every blocked
// reduction.
func TestTreeReduce(t *testing.T) {
	parts := []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	want := ((0.1 + 0.2) + (0.3 + 0.4)) + 0.5
	if got := treeReduce(append([]float64(nil), parts...)); got != want {
		t.Fatalf("treeReduce = %v, want %v (fixed pairwise order)", got, want)
	}
	if got := treeReduce(nil); got != 0 {
		t.Fatalf("treeReduce(nil) = %v", got)
	}
	if got := treeReduce([]float64{42}); got != 42 {
		t.Fatalf("treeReduce([42]) = %v", got)
	}
}

// TestPoolKernelsBitIdentical is the core determinism check of the parallel
// runtime: every kernel must produce bit-for-bit the nil-pool (sequential)
// result at every worker count, on a vector long enough that the blocked
// paths actually engage.
func TestPoolKernelsBitIdentical(t *testing.T) {
	v := randomVec(bigN, 1)
	w := randomVec(bigN, 2)
	var nilPool *Pool

	wantDot := nilPool.Dot(v, w)
	wantSum := nilPool.Sum(v)
	wantNorm := nilPool.Norm2(v)
	wantAXPY := v.Clone()
	nilPool.AXPY(wantAXPY, 0.75, w)
	wantScale := v.Clone()
	nilPool.Scale(wantScale, 1.0/3)
	wantMean := v.Clone()
	nilPool.RemoveMean(wantMean)

	// The package-level Vec methods are defined as the nil-pool kernels.
	if v.Dot(w) != wantDot || v.Sum() != wantSum {
		t.Fatal("Vec.Dot/Sum diverge from the nil-pool kernels")
	}

	for _, workers := range []int{2, 3, 8} {
		p := SharedPool(workers)
		if p == nil {
			t.Fatalf("SharedPool(%d) = nil", workers)
		}
		if got := p.Dot(v, w); got != wantDot {
			t.Fatalf("workers=%d: Dot = %v, want %v", workers, got, wantDot)
		}
		if got := p.Sum(v); got != wantSum {
			t.Fatalf("workers=%d: Sum = %v, want %v", workers, got, wantSum)
		}
		if got := p.Norm2(v); got != wantNorm {
			t.Fatalf("workers=%d: Norm2 = %v, want %v", workers, got, wantNorm)
		}
		axpy := v.Clone()
		p.AXPY(axpy, 0.75, w)
		scale := v.Clone()
		p.Scale(scale, 1.0/3)
		mean := v.Clone()
		p.RemoveMean(mean)
		for i := 0; i < bigN; i++ {
			if axpy[i] != wantAXPY[i] {
				t.Fatalf("workers=%d: AXPY[%d] = %v, want %v", workers, i, axpy[i], wantAXPY[i])
			}
			if scale[i] != wantScale[i] {
				t.Fatalf("workers=%d: Scale[%d] = %v, want %v", workers, i, scale[i], wantScale[i])
			}
			if mean[i] != wantMean[i] {
				t.Fatalf("workers=%d: RemoveMean[%d] = %v, want %v", workers, i, mean[i], wantMean[i])
			}
		}
	}
}

// TestPooledApplyBitIdentical checks the row-parallel CSR Apply against the
// sequential coalesced-pair loop, including through a weight refresh, on a
// multigraph (parallel edges exercise the pair coalescing).
func TestPooledApplyBitIdentical(t *testing.T) {
	g, err := graph.ConnectedGNM(2000, 12000, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate some edges so pairs coalesce more than one edge.
	for i := 0; i < 500; i++ {
		e := g.Edge(i)
		g.MustAddEdge(e.U, e.V, 0.5+float64(i%7))
	}
	l := NewLaplacian(g)
	l.Refresh()
	src := randomVec(g.N(), 4)
	want := NewVec(g.N())
	l.Apply(want, src)

	for _, workers := range []int{2, 3, 8} {
		lp := NewLaplacian(g)
		lp.SetPool(SharedPool(workers))
		lp.Refresh()
		got := NewVec(g.N())
		lp.Apply(got, src)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: Apply[%d] = %v, want %v", workers, i, got[i], want[i])
			}
		}
		if q, sq := lp.Quad(src), l.Quad(src); q != sq {
			t.Fatalf("workers=%d: Quad = %v, want %v", workers, q, sq)
		}

		// Reweight in place and Refresh: still bit-identical.
		for i := 0; i < g.M(); i += 3 {
			if err := g.SetWeight(i, 2.5); err != nil {
				t.Fatal(err)
			}
		}
		l.Refresh()
		lp.Refresh()
		l.Apply(want, src)
		lp.Apply(got, src)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d after refresh: Apply[%d] = %v, want %v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestRefreshAfterRewire is the regression test for the stale-pair-cache
// bug: RewireEdge keeps M constant, so the old `len(egroup) != M` guard
// skipped the pair rebuild and Refresh silently kept the old topology's
// coalesced groups. The generation-keyed guard must rebuild, making a
// refreshed Laplacian bit-identical to one built fresh on the rewired graph.
func TestRefreshAfterRewire(t *testing.T) {
	g := graph.New(6)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 2)
	g.MustAddEdge(2, 3, 3)
	g.MustAddEdge(3, 4, 4)
	g.MustAddEdge(4, 5, 5)
	l := NewLaplacian(g)

	if err := g.RewireEdge(1, 0, 5); err != nil {
		t.Fatal(err)
	}
	if g.M() != 5 {
		t.Fatalf("RewireEdge changed M to %d", g.M())
	}
	l.Refresh()

	fresh := NewLaplacian(g)
	src := Vec{1, -2, 3, -4, 5, -6}
	got, want := NewVec(6), NewVec(6)
	l.Apply(got, src)
	fresh.Apply(want, src)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("refreshed Apply[%d] = %v, fresh build %v — stale pair cache", i, got[i], want[i])
		}
	}
	for i := range want {
		if ld, fd := l.Degrees()[i], fresh.Degrees()[i]; ld != fd {
			t.Fatalf("refreshed degree[%d] = %v, fresh %v", i, ld, fd)
		}
	}
}

// TestSumOperatorConcurrentApply drives one composed operator from many
// goroutines at once — the shape of the session layer's parallel per-slot
// solves. With the old shared s.tmp scratch this races (and corrupts
// results); with per-call pool scratch every result must be exact. Run
// under -race in `make stress` and the GOMAXPROCS>1 CI job.
func TestSumOperatorConcurrentApply(t *testing.T) {
	g, err := graph.ConnectedGNM(300, 900, 5)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLaplacian(g)
	sum, err := NewSumOperator(l, &ScaledOperator{A: l, C: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	src := randomVec(g.N(), 6)
	want := NewVec(g.N())
	sum.Apply(want, src)

	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := NewVec(g.N())
			for iter := 0; iter < 50; iter++ {
				sum.Apply(dst, src)
				for i := range dst {
					if dst[i] != want[i] {
						errs <- "concurrent Apply diverged from sequential result"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}

// TestRemoveMeanOnEmptyGroup pins the empty-group guard: a component id
// range with an unpopulated id must not form the 0/0 mean (NaN would
// poison nothing today only by accident of iteration order).
func TestRemoveMeanOnEmptyGroup(t *testing.T) {
	v := Vec{1, 3, 10, 14}
	comp := []int{0, 0, 2, 2} // group 1 is empty
	v.RemoveMeanOn(comp, 3)
	want := Vec{-1, 1, -2, 2}
	for i := range want {
		if v[i] != want[i] {
			t.Fatalf("RemoveMeanOn = %v, want %v", v, want)
		}
	}
	if !v.IsFinite() {
		t.Fatalf("empty group injected a non-finite value: %v", v)
	}
}

// TestPoolRangeCoversExactly checks the fixed elementwise partition: every
// index visited exactly once, at any worker count.
func TestPoolRangeCoversExactly(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		p := SharedPool(workers)
		var mu sync.Mutex
		seen := make([]int, bigN)
		p.Range(bigN, func(lo, hi int) {
			mu.Lock()
			for i := lo; i < hi; i++ {
				seen[i]++
			}
			mu.Unlock()
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

// TestPooledCGBitIdentical solves one system with and without a pool; the
// solutions must agree bit-for-bit (same iterates, same residuals).
func TestPooledCGBitIdentical(t *testing.T) {
	g, err := graph.ConnectedGNM(1500, 6000, 7)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLaplacian(g)
	b := NewVec(g.N())
	b[0], b[g.N()-1] = 1, -1
	precond := l.Degrees().Clone()
	opts := CGOptions{Tol: 1e-10, Precond: precond, ProjectMean: true}

	want, wantRes, err := SolveCG(l, b, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		lp := NewLaplacian(g)
		lp.SetPool(SharedPool(workers))
		lp.Refresh()
		po := opts
		po.Pool = lp.Pool()
		got, gotRes, err := SolveCG(lp, b, po)
		if err != nil {
			t.Fatal(err)
		}
		if gotRes.Iterations != wantRes.Iterations || gotRes.Residual != wantRes.Residual {
			t.Fatalf("workers=%d: result %+v, want %+v", workers, gotRes, wantRes)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: x[%d] = %v, want %v (pooled CG not bit-identical)", workers, i, got[i], want[i])
			}
		}
	}
}
