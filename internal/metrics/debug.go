package metrics

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"time"
)

// Handler returns the debug mux served by -debug-addr:
//
//	/metrics        Prometheus text exposition of reg
//	/metrics.json   deterministic JSON snapshot of reg
//	/debug/pprof/*  net/http/pprof profiles (heap, profile, trace, ...)
//	/               plain-text index of the above
//
// pprof is mounted on this private mux rather than http.DefaultServeMux so
// importing the package never changes the default mux of an embedding
// program.
func Handler(reg *Registry) http.Handler {
	return HandlerWith(reg, nil)
}

// HandlerWith is Handler plus caller-supplied routes — the CLIs use it to
// mount the transport flight recorder on /debug/flight. Extra patterns are
// listed in the index and must not collide with the built-in ones.
func HandlerWith(reg *Registry, extra map[string]http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		reg.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	patterns := make([]string, 0, len(extra))
	for pat, h := range extra {
		mux.Handle(pat, h)
		patterns = append(patterns, pat)
	}
	sort.Strings(patterns)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "lapcc debug server")
		fmt.Fprintln(w, "  /metrics        Prometheus text format")
		fmt.Fprintln(w, "  /metrics.json   JSON snapshot")
		fmt.Fprintln(w, "  /debug/pprof/   pprof profiles")
		for _, pat := range patterns {
			fmt.Fprintf(w, "  %s\n", pat)
		}
	})
	return mux
}

// DebugServer is a running debug HTTP server bound to a local address.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// StartDebugServer listens on addr (":0" picks a free port) and serves
// Handler(reg) in a background goroutine. It returns once the listener is
// bound, so Addr is immediately scrapeable.
func StartDebugServer(addr string, reg *Registry) (*DebugServer, error) {
	return StartDebugServerWith(addr, reg, nil)
}

// StartDebugServerWith is StartDebugServer with extra routes (HandlerWith).
func StartDebugServerWith(addr string, reg *Registry, extra map[string]http.Handler) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics: debug server listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: HandlerWith(reg, extra), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return &DebugServer{ln: ln, srv: srv}, nil
}

// Addr returns the bound address, e.g. "127.0.0.1:43817".
func (d *DebugServer) Addr() string {
	if d == nil || d.ln == nil {
		return ""
	}
	return d.ln.Addr().String()
}

// Close stops the server and releases the listener.
func (d *DebugServer) Close() error {
	if d == nil || d.srv == nil {
		return nil
	}
	return d.srv.Close()
}
