package linalg_test

import (
	"fmt"
	"testing"

	"lapcc/internal/graph"
	"lapcc/internal/linalg"
)

// scalingWorkers are the worker counts of the recorded scaling curve
// (BENCH_scaling.json via `make bench-scaling`). Results are bit-identical
// across the sweep — the differential suite pins that — so the curve
// measures wall clock only.
var scalingWorkers = []int{1, 2, 4, 8}

// scalingN is the vertex count of the scaling instance: several reduce
// blocks long, so the blocked kernels actually split work, yet small enough
// for a 1s benchtime sweep.
const scalingN = 20000

func scalingInstance(b *testing.B) (*graph.Graph, *linalg.Laplacian) {
	b.Helper()
	g, err := graph.RandomRegular(scalingN, 8, 1)
	if err != nil {
		b.Fatal(err)
	}
	return g, linalg.NewLaplacian(g)
}

// BenchmarkScaling records the worker-scaling curve of the parallel
// numerical core: the blocked Laplacian matvec, the blocked dot reduction,
// and a full preconditioned CG solve, each at 1/2/4/8 workers. The figures
// depend on GOMAXPROCS by design, so benchgate's scaling suite keeps the
// procs tag in the recorded names and only compares runs at matching procs.
func BenchmarkScaling(b *testing.B) {
	_, l := scalingInstance(b)
	src := linalg.NewVec(scalingN)
	for i := range src {
		src[i] = float64(i%101) - 50
	}
	dst := linalg.NewVec(scalingN)

	b.Run("apply", func(b *testing.B) {
		for _, w := range scalingWorkers {
			b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
				l.SetPool(linalg.SharedPool(w))
				defer l.SetPool(nil)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					l.Apply(dst, src)
				}
			})
		}
	})

	b.Run("dot", func(b *testing.B) {
		for _, w := range scalingWorkers {
			b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
				pool := linalg.SharedPool(w)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					_ = pool.Dot(src, src)
				}
			})
		}
	})

	b.Run("cg", func(b *testing.B) {
		precond := l.Degrees().Clone()
		rhs := linalg.NewVec(scalingN)
		rhs[0], rhs[scalingN-1] = 1, -1
		scratch := &linalg.CGScratch{}
		for _, w := range scalingWorkers {
			b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
				l.SetPool(linalg.SharedPool(w))
				defer l.SetPool(nil)
				opts := linalg.CGOptions{
					Tol: 1e-8, Precond: precond, ProjectMean: true,
					Scratch: scratch, Pool: l.Pool(),
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, _, err := linalg.SolveCG(l, rhs, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	})
}
