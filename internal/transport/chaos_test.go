package transport

import (
	"errors"
	"net"
	"reflect"
	"testing"
	"time"
)

// TestChaosPlanParseRoundTrip: String() output re-parses to the same plan
// (the coordinator hands plans to worker processes through this syntax).
func TestChaosPlanParseRoundTrip(t *testing.T) {
	plans := []*ChaosPlan{
		{Seed: 7},
		{Seed: 1, Reset: 0.002, Partial: 0.05, Stall: 0.01},
		{Seed: 9, Reset: 0.1, ResetEpochs: 2, StallDelay: 3 * time.Millisecond},
		{Seed: 3, Kills: []Kill{{Barrier: 6, Proc: 1}, {Barrier: 20, Proc: 2}}},
	}
	for _, p := range plans {
		got, err := ParseChaosPlan(p.String())
		if err != nil {
			t.Fatalf("re-parsing %q: %v", p.String(), err)
		}
		if !reflect.DeepEqual(got, p) {
			t.Fatalf("round trip diverges:\n in  %+v\n out %+v", p, got)
		}
	}
	if p, err := ParseChaosPlan(""); p != nil || err != nil {
		t.Fatalf("empty spec: got (%v, %v), want (nil, nil)", p, err)
	}
}

func TestChaosPlanParseRejects(t *testing.T) {
	for _, bad := range []string{
		"frobnicate=1", "reset=2", "reset=-0.1", "kill=5", "kill=x:1",
		"reset=0.5,partial=0.4,stall=0.3", "seed", "stalldelay=fast",
	} {
		if _, err := ParseChaosPlan(bad); !errors.Is(err, ErrBadChaosPlan) {
			t.Fatalf("ParseChaosPlan(%q): got %v, want ErrBadChaosPlan", bad, err)
		}
	}
}

// TestChaosDecisionsDeterministic: the fate of a write is a pure function of
// (seed, epoch, endpoints, index), and epochs decorrelate — the property the
// supervisor leans on so a respawned mesh does not replay its predecessor's
// reset.
func TestChaosDecisionsDeterministic(t *testing.T) {
	p := &ChaosPlan{Seed: 42, Reset: 0.05, Partial: 0.2, Stall: 0.1, ResetEpochs: 4}
	var first []chaosAction
	for run := 0; run < 2; run++ {
		var acts []chaosAction
		for w := uint64(0); w < 512; w++ {
			acts = append(acts, p.action(0, 1, 2, w))
		}
		if run == 0 {
			first = acts
			continue
		}
		if !reflect.DeepEqual(first, acts) {
			t.Fatal("identical inputs produced different decisions")
		}
	}
	counts := map[chaosAction]int{}
	for _, a := range first {
		counts[a]++
	}
	for _, a := range []chaosAction{chaosReset, chaosPartial, chaosStall} {
		if counts[a] == 0 {
			t.Fatalf("action %d never fired over 512 writes at its configured rate", a)
		}
	}
	diverged := false
	for w := uint64(0); w < 512; w++ {
		if p.action(1, 1, 2, w) != first[w] {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("epoch 1 replayed epoch 0's decisions exactly")
	}
}

// TestChaosResetEpochBound: resets fire only below ResetEpochs, so a
// supervised run always converges to a clean mesh.
func TestChaosResetEpochBound(t *testing.T) {
	p := &ChaosPlan{Seed: 5, Reset: 1}
	if p.action(0, 0, 1, 0) != chaosReset {
		t.Fatal("epoch 0 write survived a reset rate of 1")
	}
	for epoch := uint64(1); epoch < 4; epoch++ {
		if p.action(epoch, 0, 1, 0) == chaosReset {
			t.Fatalf("epoch %d injected a reset past ResetEpochs", epoch)
		}
	}
}

// TestChaosConnPartialAndReset drives real frames through a chaos-wrapped
// loopback connection: partial writes must reassemble transparently via
// ReadFrame, and a reset must surface as ErrChaosReset on the writer and a
// read error on the peer.
func TestChaosConnPartialAndReset(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	peer := <-accepted
	defer peer.Close()

	// Partial-only plan: every write fragments, every frame still arrives.
	conn := (&ChaosPlan{Seed: 1, Partial: 1}).WrapConn(raw, 0, 1, 2)
	want := &Frame{Type: FrameData, Round: 3, Node: 1, Seq: 0, Total: 1,
		Msgs: []Msg{{From: 1, To: 5, Data: []int64{7, -8, 9}}}}
	for i := 0; i < 4; i++ {
		if _, err := WriteFrame(conn, want); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		got, err := ReadFrame(peer)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("frame %d diverged across partial writes", i)
		}
	}

	// Reset plan: the next write kills the connection.
	conn = (&ChaosPlan{Seed: 1, Reset: 1}).WrapConn(raw, 0, 1, 2)
	if _, err := WriteFrame(conn, want); !errors.Is(err, ErrChaosReset) {
		t.Fatalf("reset write: got %v, want ErrChaosReset", err)
	}
	peer.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := ReadFrame(peer); err == nil {
		t.Fatal("peer read succeeded after injected reset")
	}
}

// TestChaosWrapConnPassthrough: nil plans and kill-only plans do not wrap.
func TestChaosWrapConnPassthrough(t *testing.T) {
	var p *ChaosPlan
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	if got := p.WrapConn(c1, 0, 0, 1); got != c1 {
		t.Fatal("nil plan wrapped the connection")
	}
	killOnly := &ChaosPlan{Seed: 2, Kills: []Kill{{Barrier: 1, Proc: 0}}}
	if got := killOnly.WrapConn(c1, 0, 0, 1); got != c1 {
		t.Fatal("kill-only plan wrapped the connection")
	}
	if kills := killOnly.KillsAt(1); len(kills) != 1 || kills[0] != 0 {
		t.Fatalf("KillsAt(1) = %v", kills)
	}
	if kills := killOnly.KillsAt(2); kills != nil {
		t.Fatalf("KillsAt(2) = %v", kills)
	}
}
