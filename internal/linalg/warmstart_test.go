package linalg

import (
	"testing"
)

// Warm starting PreconCheby solves the shifted problem from X0: the
// iteration count is the same fixed kappa/eps bound as a cold start, and a
// good seed only improves the final error.
func TestPreconChebyWarmStartIterationBound(t *testing.T) {
	lg, bSolve, kappa := chebySetup(t, 0.5)
	b := meanFreeRandomVec(lg.Dim(), 18)
	want, err := LaplacianPseudoSolve(lg.Dense(), b)
	if err != nil {
		t.Fatal(err)
	}
	const eps = 1e-8

	// Seed from a cruder solve of the same system — the shape the solver's
	// warm start produces (previous potentials of a nearby system).
	seed, _, err := PreconCheby(lg, bSolve, b, ChebyOptions{Kappa: kappa, Eps: 1e-2})
	if err != nil {
		t.Fatal(err)
	}
	cold, coldRes, err := PreconCheby(lg, bSolve, b, ChebyOptions{Kappa: kappa, Eps: eps})
	if err != nil {
		t.Fatal(err)
	}
	warm, warmRes, err := PreconCheby(lg, bSolve, b, ChebyOptions{Kappa: kappa, Eps: eps, X0: seed})
	if err != nil {
		t.Fatal(err)
	}

	if warmRes.Iterations > coldRes.Iterations {
		t.Fatalf("warm start took %d iterations, cold bound is %d", warmRes.Iterations, coldRes.Iterations)
	}
	coldErr := lg.Norm(cold.Sub(want)) / lg.Norm(want)
	warmErr := lg.Norm(warm.Sub(want)) / lg.Norm(want)
	if warmErr > eps {
		t.Fatalf("warm-started error %v > eps %v", warmErr, eps)
	}
	// The warm error bound is relative to the shifted system, so it lands in
	// the same eps ballpark as cold — just from a head start.
	if warmErr > 10*coldErr && warmErr > eps/10 {
		t.Fatalf("warm start much worse than cold: %v vs %v", warmErr, coldErr)
	}
}

// A zero X0 is the cold start: the result must be identical.
func TestPreconChebyZeroWarmStartMatchesCold(t *testing.T) {
	lg, bSolve, kappa := chebySetup(t, 0.5)
	b := meanFreeRandomVec(lg.Dim(), 32)
	const eps = 1e-6
	cold, _, err := PreconCheby(lg, bSolve, b, ChebyOptions{Kappa: kappa, Eps: eps})
	if err != nil {
		t.Fatal(err)
	}
	warm, _, err := PreconCheby(lg, bSolve, b, ChebyOptions{Kappa: kappa, Eps: eps, X0: NewVec(lg.Dim())})
	if err != nil {
		t.Fatal(err)
	}
	for i := range cold {
		if cold[i] != warm[i] {
			t.Fatalf("x[%d]: zero warm start %v != cold %v", i, warm[i], cold[i])
		}
	}
}

func TestPreconChebyWarmStartBadLength(t *testing.T) {
	lg, bSolve, kappa := chebySetup(t, 0.5)
	b := meanFreeRandomVec(lg.Dim(), 33)
	if _, _, err := PreconCheby(lg, bSolve, b, ChebyOptions{Kappa: kappa, Eps: 1e-4, X0: NewVec(3)}); err == nil {
		t.Fatal("bad warm-start length accepted")
	}
}

// CG with the exact solution as X0 converges immediately; with any X0 it
// still meets the residual tolerance.
func TestCGWarmStart(t *testing.T) {
	lg, _, _ := chebySetup(t, 0.25)
	b := meanFreeRandomVec(lg.Dim(), 34)
	const tol = 1e-10

	cold, coldRes, err := SolveCG(lg, b, CGOptions{Tol: tol, ProjectMean: true})
	if err != nil {
		t.Fatal(err)
	}
	warm, warmRes, err := SolveCG(lg, b, CGOptions{Tol: tol, ProjectMean: true, X0: cold})
	if err != nil {
		t.Fatal(err)
	}
	if warmRes.Iterations != 0 {
		t.Fatalf("warm start from the solution took %d iterations", warmRes.Iterations)
	}
	diff := warm.Sub(cold)
	if diff.Norm2() > 1e-12*cold.Norm2() {
		t.Fatalf("x drifted by %v on a converged warm start", diff.Norm2())
	}
	if warmRes.Iterations > coldRes.Iterations {
		t.Fatalf("warm iterations %d > cold %d", warmRes.Iterations, coldRes.Iterations)
	}
}
