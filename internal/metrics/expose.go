package metrics

import (
	"bufio"
	"encoding/json"
	"io"
	"strconv"
	"strings"
)

// This file renders registry snapshots in the two exposition formats the
// debug server serves: the Prometheus text format (version 0.0.4, the
// format every scraper speaks) and a JSON snapshot for ad-hoc tooling.
// Both are deterministic: they render the sorted Snapshot and nothing else.

// WritePrometheus writes the registry in the Prometheus text exposition
// format. Metrics sharing a name (label variants) are grouped under one
// HELP/TYPE header, as the format requires. Histograms render cumulative
// _bucket{le="..."} series with power-of-two bounds plus _sum and _count.
// A nil registry writes nothing and returns nil.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	lastName := ""
	for _, s := range r.Snapshot() {
		if s.Name != lastName {
			lastName = s.Name
			if s.Help != "" {
				bw.WriteString("# HELP ")
				bw.WriteString(s.Name)
				bw.WriteByte(' ')
				bw.WriteString(escapeHelp(s.Help))
				bw.WriteByte('\n')
			}
			bw.WriteString("# TYPE ")
			bw.WriteString(s.Name)
			bw.WriteByte(' ')
			bw.WriteString(s.Kind.String())
			bw.WriteByte('\n')
		}
		switch s.Kind {
		case KindCounter, KindGauge:
			bw.WriteString(s.Name)
			writeLabels(bw, s.Labels, "", "")
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatInt(s.Value, 10))
			bw.WriteByte('\n')
		case KindHistogram:
			for _, b := range s.Buckets {
				bw.WriteString(s.Name)
				bw.WriteString("_bucket")
				writeLabels(bw, s.Labels, "le", strconv.FormatInt(b.UpperBound, 10))
				bw.WriteByte(' ')
				bw.WriteString(strconv.FormatInt(b.Count, 10))
				bw.WriteByte('\n')
			}
			bw.WriteString(s.Name)
			bw.WriteString("_bucket")
			writeLabels(bw, s.Labels, "le", "+Inf")
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatInt(s.Count, 10))
			bw.WriteByte('\n')
			bw.WriteString(s.Name)
			bw.WriteString("_sum")
			writeLabels(bw, s.Labels, "", "")
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatInt(s.Sum, 10))
			bw.WriteByte('\n')
			bw.WriteString(s.Name)
			bw.WriteString("_count")
			writeLabels(bw, s.Labels, "", "")
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatInt(s.Count, 10))
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// writeLabels renders {k="v",...} including the optional extra pair; it
// writes nothing when there are no labels at all.
func writeLabels(bw *bufio.Writer, labels []Label, extraKey, extraValue string) {
	if len(labels) == 0 && extraKey == "" {
		return
	}
	bw.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString(l.Key)
		bw.WriteString(`="`)
		bw.WriteString(escapeLabelValue(l.Value))
		bw.WriteString(`"`)
	}
	if extraKey != "" {
		if len(labels) > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString(extraKey)
		bw.WriteString(`="`)
		bw.WriteString(escapeLabelValue(extraValue))
		bw.WriteString(`"`)
	}
	bw.WriteByte('}')
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// JSON snapshot records; one struct per kind keeps field order fixed so
// the output is deterministic.

type jsonLabel struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

type jsonBucket struct {
	LE    int64 `json:"le"`
	Count int64 `json:"count"`
}

type jsonMetric struct {
	Name    string       `json:"name"`
	Kind    string       `json:"kind"`
	Help    string       `json:"help,omitempty"`
	Labels  []jsonLabel  `json:"labels,omitempty"`
	Value   *int64       `json:"value,omitempty"`
	Count   *int64       `json:"count,omitempty"`
	Sum     *int64       `json:"sum,omitempty"`
	Buckets []jsonBucket `json:"buckets,omitempty"`
}

type jsonSnapshot struct {
	Metrics []jsonMetric `json:"metrics"`
}

// WriteJSON writes the registry as one deterministic JSON document:
// {"metrics": [...]} sorted exactly like Snapshot. A nil registry writes
// an empty document.
func (r *Registry) WriteJSON(w io.Writer) error {
	doc := jsonSnapshot{Metrics: []jsonMetric{}}
	for _, s := range r.Snapshot() {
		m := jsonMetric{Name: s.Name, Kind: s.Kind.String(), Help: s.Help}
		for _, l := range s.Labels {
			m.Labels = append(m.Labels, jsonLabel{Key: l.Key, Value: l.Value})
		}
		switch s.Kind {
		case KindCounter, KindGauge:
			v := s.Value
			m.Value = &v
		case KindHistogram:
			c, sum := s.Count, s.Sum
			m.Count = &c
			m.Sum = &sum
			for _, b := range s.Buckets {
				m.Buckets = append(m.Buckets, jsonBucket{LE: b.UpperBound, Count: b.Count})
			}
		}
		doc.Metrics = append(doc.Metrics, m)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
