// Command loadgen replays the deterministic mixed workload of
// internal/serve against a running lapccd daemon and records per-op
// latency percentiles and run throughput.
//
//	go run ./cmd/loadgen -base http://127.0.0.1:8080
//	go run ./cmd/loadgen -base http://127.0.0.1:8080 -gate
//
// With -gate, the run's ns-per-request is diffed against the checked-in
// BENCH_serve.json under the serve tolerance; per-op p50/p99 latencies are
// recorded in the file's headline as informational data only, because
// per-op percentiles under concurrency measure queueing luck and swing
// several-fold between identical runs. A missing baseline is seeded from
// this run, matching benchgate's bootstrap behavior. Fresh figures are
// always written to -out so a regression can be inspected or accepted by
// copying the file over the baseline.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"lapcc/internal/benchgate"
	"lapcc/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		base        = flag.String("base", "http://127.0.0.1:8080", "daemon base URL")
		requests    = flag.Int("requests", 64, "total requests across the mix")
		concurrency = flag.Int("concurrency", 4, "client workers")
		topologies  = flag.Int("topologies", 2, "distinct solve topologies (fewer than requests = pool hits)")
		n           = flag.Int("n", 48, "vertex count of generated instances")
		seed        = flag.Int64("seed", 1, "workload seed")
		wait        = flag.Duration("wait", 10*time.Second, "wait this long for the daemon's /healthz before starting")
		out         = flag.String("out", "BENCH_serve.new.json", "write fresh figures to this file")
		gate        = flag.Bool("gate", false, "diff fresh figures against -baseline and exit non-zero on regression")
		baseline    = flag.String("baseline", "BENCH_serve.json", "baseline file for -gate (seeded from this run when missing)")
		budgetR     = flag.Int64("budget-rounds", 0, "per-request round budget (0 = unlimited)")
		connRetries = flag.Int("conn-retries", 8, "per-request transport-error retries with exponential backoff (rides through a daemon restart; 0 disables)")
		traceSample = flag.Int("trace-sample", 0, "run every Nth request with ?trace=1 (span summary in the response, full stream at /v1/trace/{id}); 0 disables")
	)
	flag.Parse()

	if err := serve.WaitReady(nil, *base, *wait); err != nil {
		return err
	}
	opts := serve.LoadOptions{
		BaseURL:     *base,
		Requests:    *requests,
		Concurrency: *concurrency,
		Topologies:  *topologies,
		N:           *n,
		Seed:        *seed,
		ConnRetries: *connRetries,
		TraceSample: *traceSample,
	}
	if *budgetR > 0 {
		opts.Budget = &serve.WireBudget{Rounds: *budgetR}
	}
	res, err := serve.RunLoad(opts)
	if err != nil {
		return err
	}

	fmt.Printf("loadgen: %d requests, %d errors, %d shed-retries, %d conn-retries, %.1f req/s (%.2fms/req) over %s\n",
		res.Requests, res.Errors, res.Retries, res.ConnRetries, 1e9/res.NsPerRequest, res.NsPerRequest/1e6, res.Elapsed.Round(time.Millisecond))
	ops := make([]string, 0, len(res.PerOp))
	for op := range res.PerOp {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		st := res.PerOp[op]
		fmt.Printf("  %-12s %3d reqs  p50 %8.2fms  p99 %8.2fms  mean %8.2fms  errors %d\n",
			op, st.Count, float64(st.P50)/1e6, float64(st.P99)/1e6, float64(st.Mean)/1e6, st.Errors)
	}
	if res.Traced > 0 {
		fmt.Printf("loadgen: %d traced requests (every %d), trace overhead x%.2f\n",
			res.Traced, *traceSample, res.TraceOverhead)
	}
	// Request IDs join client-side outcomes to the daemon's access-log
	// lines and /v1/trace/{id}.
	for _, rt := range res.Retried {
		fmt.Printf("  retried %-12s request %3d  id=%s  shed-retries=%d conn-retries=%d\n",
			rt.Op, rt.Index, orDash(rt.ID), rt.Retries, rt.ConnRetries)
	}
	for _, f := range res.Failures {
		fmt.Printf("  FAILED  %-12s request %3d  id=%s  status=%d code=%s\n",
			f.Op, f.Index, orDash(f.ID), f.Status, f.Code)
	}
	if res.Errors > 0 {
		return fmt.Errorf("%d/%d requests failed", res.Errors, res.Requests)
	}

	fresh := map[string]benchgate.Metrics{"Serve/throughput": {NsPerOp: res.NsPerRequest}}
	headline, err := json.Marshal(res.PerOp)
	if err != nil {
		return err
	}
	f := &benchgate.File{
		Description:   "serving-layer throughput baseline: deterministic loadgen mix against lapccd; per-op p50/p99 latencies recorded in headline",
		Recorded:      time.Now().Format("2006-01-02"),
		Command:       fmt.Sprintf("go run ./cmd/loadgen -requests %d -concurrency %d -topologies %d -n %d -seed %d", *requests, *concurrency, *topologies, *n, *seed),
		Benchmarks:    fresh,
		Headline:      headline,
		TraceOverhead: res.TraceOverhead,
		Notes:         "The gate compares whole-run ns-per-request under the serve tolerance (3.0x). Per-op percentiles are informational: under concurrency they measure queueing luck, not solver speed.",
	}
	if err := f.WriteFile(*out); err != nil {
		return err
	}
	fmt.Printf("loadgen: fresh figures written to %s\n", *out)

	if !*gate {
		return nil
	}
	baseFile, err := benchgate.Load(*baseline)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			if err := f.WriteFile(*baseline); err != nil {
				return err
			}
			fmt.Printf("loadgen: no baseline; seeded %s from this run\n", *baseline)
			return nil
		}
		return err
	}
	regs := benchgate.Diff(baseFile.Benchmarks, fresh, benchgate.ServeTolerance)
	if len(regs) > 0 {
		fmt.Printf("loadgen: FAIL, %d regression(s) against %s\n", len(regs), *baseline)
		for _, r := range regs {
			fmt.Printf("  %s\n", r)
		}
		return fmt.Errorf("serve gate failed")
	}
	fmt.Printf("loadgen: PASS, %d metrics within tolerance of %s\n", len(baseFile.Benchmarks), *baseline)
	return nil
}

// orDash renders an absent request ID as "-" (the request never reached
// the daemon).
func orDash(id string) string {
	if id == "" {
		return "-"
	}
	return id
}
