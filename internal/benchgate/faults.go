package benchgate

import (
	"fmt"
	"math"

	"lapcc/internal/cc"
	"lapcc/internal/core"
	"lapcc/internal/graph"
	"lapcc/internal/linalg"
)

// MeasureFaultWorkloads re-executes the four fault-differential workloads
// (the same instances and plan seeds as fault_differential_test.go and
// BENCH_faults.json) and returns their clean/faulty round totals. Rounds
// are model quantities, deterministic per plan seed, so the result is
// host-independent and gates exactly against the baseline.
func MeasureFaultWorkloads() (map[string]Workload, error) {
	const drop = 0.01
	out := map[string]Workload{}

	record := func(name, instance string, clean, faulty int64) {
		overhead := 0.0
		if clean > 0 {
			overhead = math.Round(float64(faulty-clean)/float64(clean)*1000) / 10
		}
		out[name] = Workload{
			Instance:     instance,
			CleanRounds:  clean,
			FaultyRounds: faulty,
			OverheadPct:  overhead,
		}
	}
	plan := func(seed uint64) *cc.FaultPlan { return &cc.FaultPlan{Seed: seed, Drop: drop} }

	// Lapsolver: s-t potentials on a connected GNM graph.
	{
		g, err := graph.ConnectedGNM(48, 140, 11)
		if err != nil {
			return nil, fmt.Errorf("lapsolver workload: %w", err)
		}
		b := linalg.NewVec(48)
		b[0], b[47] = 1, -1
		clean, err := core.SolveLaplacianWith(g.Clone(), b, 1e-8, core.RunOptions{})
		if err != nil {
			return nil, fmt.Errorf("lapsolver clean: %w", err)
		}
		faulty, err := core.SolveLaplacianWith(g.Clone(), b, 1e-8, core.RunOptions{Faults: plan(101)})
		if err != nil {
			return nil, fmt.Errorf("lapsolver faulty: %w", err)
		}
		record("lapsolver", "ConnectedGNM n=48 m=140, eps=1e-8, plan seed 101",
			clean.Rounds.Total, faulty.Rounds.Total)
	}

	// Maxflow: layered DAG through the IPM.
	{
		dg := graph.LayeredDAG(3, 4, 2, 8, 21)
		s, t := 0, dg.N()-1
		clean, err := core.MaxFlowWith(dg, s, t, core.RunOptions{})
		if err != nil {
			return nil, fmt.Errorf("maxflow clean: %w", err)
		}
		faulty, err := core.MaxFlowWith(dg, s, t, core.RunOptions{Faults: plan(102)})
		if err != nil {
			return nil, fmt.Errorf("maxflow faulty: %w", err)
		}
		record("maxflow", "LayeredDAG 3x4 U=8, plan seed 102",
			clean.Rounds.Total, faulty.Rounds.Total)
	}

	// Min-cost flow: the 6-vertex unit-capacity demand instance.
	{
		dg := graph.NewDi(6)
		dg.MustAddArc(0, 2, 1, 3)
		dg.MustAddArc(0, 3, 1, 1)
		dg.MustAddArc(1, 3, 1, 2)
		dg.MustAddArc(1, 4, 1, 4)
		dg.MustAddArc(3, 5, 1, 1)
		dg.MustAddArc(2, 5, 1, 2)
		dg.MustAddArc(4, 5, 1, 1)
		sigma := []int64{1, 1, 0, 0, 0, -2}
		clean, err := core.MinCostFlowWith(dg, sigma, core.RunOptions{})
		if err != nil {
			return nil, fmt.Errorf("mcmf clean: %w", err)
		}
		faulty, err := core.MinCostFlowWith(dg, sigma, core.RunOptions{Faults: plan(103)})
		if err != nil {
			return nil, fmt.Errorf("mcmf faulty: %w", err)
		}
		record("mcmf", "6-vertex unit-capacity demand instance, plan seed 103",
			clean.Rounds.Total, faulty.Rounds.Total)
	}

	// Euler: orientation of a random Eulerian graph.
	{
		g, err := graph.RandomEulerian(32, 8, 3, 13)
		if err != nil {
			return nil, fmt.Errorf("euler workload: %w", err)
		}
		clean, err := core.EulerianOrientWith(g, core.RunOptions{})
		if err != nil {
			return nil, fmt.Errorf("euler clean: %w", err)
		}
		faulty, err := core.EulerianOrientWith(g, core.RunOptions{Faults: plan(104)})
		if err != nil {
			return nil, fmt.Errorf("euler faulty: %w", err)
		}
		record("euler", "RandomEulerian n=32, plan seed 104",
			clean.Rounds.Total, faulty.Rounds.Total)
	}

	return out, nil
}
