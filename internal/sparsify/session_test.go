package sparsify

import (
	"math"
	"math/rand"
	"testing"

	"lapcc/internal/graph"
	"lapcc/internal/rounds"
)

func chainTestGraph(t *testing.T, n int, seed int64) *graph.Graph {
	t.Helper()
	g, err := graph.RandomRegular(n, 8, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// sameGraph reports whether two graphs are bit-identical: same vertex count
// and the same (U, V, W) edge list in the same order.
func sameGraph(a, b *graph.Graph) bool {
	if a.N() != b.N() || a.M() != b.M() {
		return false
	}
	be := b.Edges()
	for i, e := range a.Edges() {
		if e.U != be[i].U || e.V != be[i].V || e.W != be[i].W {
			return false
		}
	}
	return true
}

// Tier 1: weights that keep every edge in its binary class must be served
// by exact reuse, and the kept sparsifier must equal what a fresh build on
// the new weights would produce (structure is a pure function of the
// partition).
func TestChainExactReuseBitIdentical(t *testing.T) {
	g := chainTestGraph(t, 64, 3)
	chain, err := NewChain(g.Clone(), ChainOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// All seed weights are 1 (class 0); any value in [1, 2) stays there.
	rng := rand.New(rand.NewSource(7))
	w := make([]float64, g.M())
	for i := range w {
		w[i] = 1 + rng.Float64()*0.999
	}
	reused, err := chain.Reweight(w)
	if err != nil {
		t.Fatal(err)
	}
	if !reused {
		t.Fatal("within-class reweight was not reused")
	}
	st := chain.Stats()
	if st.Reweights != 1 || st.ExactReuses != 1 || st.Rebuilds != 0 || st.Remeasures != 0 {
		t.Fatalf("stats = %+v, want exactly one exact reuse", st)
	}

	fresh := g.Clone()
	for i, wi := range w {
		if err := fresh.SetWeight(i, wi); err != nil {
			t.Fatal(err)
		}
	}
	res, err := Sparsify(fresh, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sameGraph(chain.H(), res.H) {
		t.Fatal("reused sparsifier differs from a fresh build on the new weights")
	}
}

// Tier 2: a uniform scale changes every class but leaves the envelope at 1,
// so the structure is reused under the drift certificate without any
// measurement.
func TestChainUniformScaleDriftReuse(t *testing.T) {
	g := chainTestGraph(t, 64, 4)
	chain, err := NewChain(g.Clone(), ChainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	w := make([]float64, g.M())
	for i, e := range g.Edges() {
		w[i] = e.W * 8 // class 0 -> class 3 on every edge
	}
	reused, err := chain.Reweight(w)
	if err != nil {
		t.Fatal(err)
	}
	if !reused {
		t.Fatal("uniform scale was not reused")
	}
	st := chain.Stats()
	if st.DriftReuses != 1 || st.Remeasures != 0 || st.Rebuilds != 0 {
		t.Fatalf("stats = %+v, want one drift reuse without measurement", st)
	}
}

// Tier 3 -> rebuild: weights drifting over many orders of magnitude in
// opposite directions defeat both certificates and the Lanczos re-measure,
// forcing a full rebuild whose sparsifier matches a fresh build.
func TestChainRebuildOnHugeDrift(t *testing.T) {
	g := chainTestGraph(t, 64, 5)
	chain, err := NewChain(g.Clone(), ChainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	w := make([]float64, g.M())
	for i := range w {
		if i%2 == 0 {
			w[i] = math.Ldexp(1, 40)
		} else {
			w[i] = math.Ldexp(1, -40)
		}
	}
	reused, err := chain.Reweight(w)
	if err != nil {
		t.Fatal(err)
	}
	if reused {
		t.Fatalf("2^80 envelope drift was reused (stats %+v)", chain.Stats())
	}
	if st := chain.Stats(); st.Rebuilds != 1 {
		t.Fatalf("stats = %+v, want one rebuild", st)
	}

	fresh := g.Clone()
	for i, wi := range w {
		if err := fresh.SetWeight(i, wi); err != nil {
			t.Fatal(err)
		}
	}
	res, err := Sparsify(fresh, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sameGraph(chain.H(), res.H) {
		t.Fatal("rebuilt sparsifier differs from a fresh build on the new weights")
	}
}

// Reuse replays the recorded build schedule, so a reweight-then-solve is
// indistinguishable from a fresh build in charged rounds.
func TestChainReuseChargesMatchFreshBuild(t *testing.T) {
	g := chainTestGraph(t, 64, 6)

	chainLed := rounds.New()
	chain, err := NewChain(g.Clone(), ChainOptions{Sparsify: Options{Ledger: chainLed}})
	if err != nil {
		t.Fatal(err)
	}
	buildCharged := chainLed.TotalOf(rounds.Charged)

	w := make([]float64, g.M())
	for i := range w {
		w[i] = 1.5
	}
	if _, err := chain.Reweight(w); err != nil {
		t.Fatal(err)
	}
	reuseCharged := chainLed.TotalOf(rounds.Charged) - buildCharged

	freshLed := rounds.New()
	fresh := g.Clone()
	for i := range w {
		if err := fresh.SetWeight(i, w[i]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Sparsify(fresh, Options{Ledger: freshLed}); err != nil {
		t.Fatal(err)
	}
	if freshCharged := freshLed.TotalOf(rounds.Charged); reuseCharged != freshCharged {
		t.Fatalf("reuse charged %d rounds, fresh build charges %d", reuseCharged, freshCharged)
	}
}

func TestChainReweightLengthMismatch(t *testing.T) {
	g := chainTestGraph(t, 32, 8)
	chain, err := NewChain(g, ChainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := chain.Reweight(make([]float64, 3)); err == nil {
		t.Fatal("length mismatch accepted")
	}
}
