package lapcc_test

// Larger-scale stress runs, skipped under -short: these push each pipeline
// an order of magnitude past the unit tests to catch scaling bugs
// (quadratic blowups, ledger overflow, batching edge cases).

import (
	"testing"

	"lapcc/internal/euler"
	"lapcc/internal/graph"
	"lapcc/internal/lapsolver"
	"lapcc/internal/linalg"
	"lapcc/internal/maxflow"
	"lapcc/internal/mcmf"
	"lapcc/internal/rounds"
)

func TestStressEulerianLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	g, err := graph.RandomEulerian(4096, 300, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	led := rounds.New()
	orient, st, err := euler.Orient(g, nil, euler.Options{Ledger: led})
	if err != nil {
		t.Fatal(err)
	}
	if v := euler.CheckOrientation(g, orient); v != -1 {
		t.Fatalf("unbalanced at %d", v)
	}
	t.Logf("n=4096 m=%d: %d iterations, %d rounds", g.M(), st.Iterations, led.Total())
	// O(log n log* n): any blowup past ~1000 rounds signals a regression.
	if led.Total() > 1500 {
		t.Fatalf("rounds %d far above the log n log* n envelope", led.Total())
	}
}

func TestStressSolverLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	g, err := graph.RandomRegular(1024, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := lapsolver.NewSolver(g, lapsolver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b := linalg.NewVec(1024)
	b[0], b[1023] = 1, -1
	x, st, err := s.Solve(b, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	l := s.Laplacian()
	lx := linalg.NewVec(1024)
	l.Apply(lx, x)
	if r := lx.Sub(b).Norm2(); r > 1e-6 {
		t.Fatalf("residual %v", r)
	}
	t.Logf("n=1024: %d chebyshev iterations, kappa %v", st.Iterations, st.KappaUsed)
}

func TestStressMaxFlowWide(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	dg := graph.LayeredDAG(4, 10, 3, 32, 3)
	s, tt := 0, dg.N()-1
	want, _, err := maxflow.Dinic(dg, s, tt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := maxflow.MaxFlow(dg, s, tt, maxflow.Options{FastSolve: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != want {
		t.Fatalf("value %d != %d", res.Value, want)
	}
	t.Logf("n=%d m=%d F*=%d: %d IPM iterations, %d final augs",
		dg.N(), dg.M(), want, res.IPMIterations, res.FinalAugmentations)
	if res.FinalAugmentations > 3 {
		t.Fatalf("%d final augmentations; IPM quality regressed", res.FinalAugmentations)
	}
}

func TestStressMinCostFlowWide(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	// 16x16 assignment with degree 4.
	rng := newBenchRng(9)
	const side = 16
	dg := graph.NewDi(2 * side)
	sigma := make([]int64, 2*side)
	for u := 0; u < side; u++ {
		partner := u % side
		dg.MustAddArc(u, side+partner, 1, 1+rng.Int63n(64))
		for d := 1; d < 4; d++ {
			dg.MustAddArc(u, side+rng.Intn(side), 1, 1+rng.Int63n(64))
		}
		sigma[u] = 1
		sigma[side+partner]--
	}
	_, want, err := mcmf.Solve(dg, sigma)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mcmf.MinCostFlow(dg, sigma, mcmf.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != want {
		t.Fatalf("cost %d != %d", res.Cost, want)
	}
	t.Logf("m=%d: %d progress iterations, %d repairs, %d cancels",
		dg.M(), res.ProgressIterations, res.RepairAugmentations, res.CyclesCancelled)
}
