// Unit-capacity minimum cost flow (Theorem 1.3) solving an assignment
// problem: route workers to tasks over a sparse compatibility graph at
// minimum total cost, exactly.
//
//	go run ./examples/mincostflow
package main

import (
	"fmt"
	"os"

	"lapcc/internal/core"
	"lapcc/internal/graph"
	"lapcc/internal/mcmf"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mincostflow:", err)
		os.Exit(1)
	}
}

func run() error {
	// 8 workers, 8 tasks; each worker can do 3 random tasks at a cost in
	// 1..20, plus a designated fallback task so the instance is feasible.
	const workers, tasks = 8, 8
	dg := graph.NewDi(workers + tasks)
	sigma := make([]int64, workers+tasks)
	costs := []int64{7, 3, 12, 5, 9, 14, 2, 8, 11, 6, 4, 10, 13, 1, 15, 16}
	ci := 0
	next := func() int64 { c := costs[ci%len(costs)]; ci++; return c }
	for w := 0; w < workers; w++ {
		fallback := w % tasks
		dg.MustAddArc(w, workers+fallback, 1, next())
		dg.MustAddArc(w, workers+(w+3)%tasks, 1, next())
		dg.MustAddArc(w, workers+(w+5)%tasks, 1, next())
		sigma[w] = 1
		sigma[workers+fallback]--
	}
	fmt.Printf("assignment: %d workers, %d tasks, %d compatibility arcs, W=%d\n",
		workers, tasks, dg.M(), dg.MaxCost())

	res, err := core.MinCostFlowWith(dg, sigma, core.RunOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("minimum total cost: %d\n", res.Cost)
	fmt.Printf("  interior-point iterations: %d, repair augmentations: %d\n",
		res.ProgressIterations, res.RepairAugmentations)
	fmt.Printf("  rounds: %d total (%d measured + %d charged)\n",
		res.Rounds.Total, res.Rounds.Measured, res.Rounds.Charged)

	// Cross-check against the successive-shortest-path oracle.
	_, oracleCost, err := mcmf.Solve(dg, sigma)
	if err != nil {
		return err
	}
	fmt.Printf("  oracle cost agrees: %v\n", oracleCost == res.Cost)

	fmt.Println("chosen assignment:")
	for i, a := range dg.Arcs() {
		if res.Flow[i] == 1 {
			fmt.Printf("  worker %d -> task %d (cost %d)\n", a.From, a.To-workers, a.Cost)
		}
	}
	return nil
}
