// Command flowcc runs the congested-clique flow algorithms on generated or
// file-based instances and reports values, costs, and round breakdowns,
// including the section 1.1 baselines.
//
// Arc file format: one arc per line, "from to capacity [cost]"; lines
// starting with '#' are ignored.
//
//	go run ./cmd/flowcc -algo maxflow -gen layered -width 6
//	go run ./cmd/flowcc -algo mincost -n 8
//	go run ./cmd/flowcc -algo maxflow -arcs net.txt -source 0 -sink 9
//	go run ./cmd/flowcc -algo maxflow -trace out.json   # Perfetto-loadable
//	go run ./cmd/flowcc -algo maxflow -faults seed=1,drop=0.01
//	go run ./cmd/flowcc -algo mincost -budget rounds=100000
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"lapcc/internal/cc"
	"lapcc/internal/core"
	"lapcc/internal/graph"
	"lapcc/internal/linalg"
	"lapcc/internal/maxflow"
	"lapcc/internal/mcmf"
	"lapcc/internal/metrics"
	"lapcc/internal/rounds"
	"lapcc/internal/trace"
	"lapcc/internal/transport"
	"lapcc/internal/transport/tcp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "flowcc:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		algo          = flag.String("algo", "maxflow", "maxflow | mincost")
		path          = flag.String("arcs", "", "arc-list file (from to cap [cost])")
		width         = flag.Int("width", 4, "layered generator width (maxflow)")
		layers        = flag.Int("layers", 3, "layered generator depth (maxflow)")
		maxCap        = flag.Int64("maxcap", 8, "generator capacity bound")
		n             = flag.Int("n", 6, "assignment generator side size (mincost)")
		maxW          = flag.Int64("maxcost", 16, "generator cost bound (mincost)")
		source        = flag.Int("source", 0, "source vertex")
		sink          = flag.Int("sink", -1, "sink vertex (default n-1)")
		seed          = flag.Int64("seed", 7, "generator seed")
		trOut         = flag.String("trace", "", "write a Chrome trace_event file (load in Perfetto / chrome://tracing)")
		trEv          = flag.String("trace-events", "", "write the deterministic JSONL span/cost event stream")
		faults        = flag.String("faults", "", "deterministic fault plan, e.g. 'seed=1,drop=0.01' or bare drop rate '0.01' (see cc.ParseFaultPlan)")
		budget        = flag.String("budget", "", "abort when exhausted: 'rounds=N,wall=DUR' or bare round count 'N'")
		debugAddr     = flag.String("debug-addr", "", "serve /metrics, /metrics.json and /debug/pprof on this address (e.g. localhost:6060) for the duration of the run")
		debugHold     = flag.Duration("debug-hold", 0, "keep the -debug-addr server up this long after the run (for scraping short runs)")
		workers       = flag.Int("workers", 0, "worker count for the numerical core (0 = GOMAXPROCS, 1 = sequential); results are bit-identical at any setting")
		transportSpec = flag.String("transport", "local", "delivery backend: 'local', 'mem' (in-process wire codec), or 'tcp[,procs=N][,bin=PATH][,supervise=1]' (multi-process loopback clique); results are bit-identical across backends")
		chaosSpec     = flag.String("chaos", "", "socket-level chaos plan for the tcp backend, e.g. 'seed=7,reset=0.002,partial=0.05,kill=3:1' (see transport.ParseChaosPlan); implies supervision, results stay bit-identical")
		flightPath    = flag.String("flight", "", "attach a transport flight recorder (tcp backend): its wall-clock event ring is written here at exit and auto-dumped on unrecoverable failure; also served at /debug/flight with -debug-addr")
	)
	flag.Parse()

	var tr *trace.Tracer
	if *trOut != "" || *trEv != "" {
		tr = trace.New()
	}
	var fl *trace.Flight
	if *flightPath != "" {
		fl = trace.NewFlight(trace.DefaultFlightSize)
	}
	ro := core.RunOptions{Trace: tr, Workers: *workers}
	if *debugAddr != "" {
		srv, reg, err := startDebug(*debugAddr, fl)
		if err != nil {
			return err
		}
		defer holdAndClose(srv, *debugHold)
		ro.Metrics = reg
	}
	if *faults != "" {
		plan, err := cc.ParseFaultPlan(*faults)
		if err != nil {
			return err
		}
		ro.Faults = plan
		fmt.Printf("faults: %s\n", plan)
	}
	if *budget != "" {
		b, err := rounds.ParseBudget(*budget)
		if err != nil {
			return err
		}
		ro.Budget = b
	}
	if *transportSpec != "" && *transportSpec != "local" {
		var chaos *transport.ChaosPlan
		if *chaosSpec != "" {
			var err error
			if chaos, err = transport.ParseChaosPlan(*chaosSpec); err != nil {
				return err
			}
		}
		bt, err := tcp.OpenWith(*transportSpec, chaos)
		if err != nil {
			return err
		}
		if bt != nil {
			defer bt.Close()
			ro.Transport = bt
			fmt.Printf("transport: %s\n", *transportSpec)
			if tt, ok := bt.(*tcp.Transport); ok {
				// Merge worker-local span records into the global tracer
				// as node-%d subtrees at every barrier.
				tt.SetTracer(tr)
				if fl != nil {
					tt.SetFlight(fl, *flightPath)
				}
				if chaos != nil {
					fmt.Printf("transport: chaos %s\n", chaos)
					// Runs after the report: the smoke gates filter '^transport:'.
					defer func() {
						rec := tt.Recovery()
						fmt.Printf("transport: recovery kills=%d restarts=%d respawns=%d replayed-barriers=%d heartbeat-failures=%d epoch=%d\n",
							rec.Kills, rec.Restarts, rec.Respawns, rec.ReplayedBarriers, rec.HeartbeatFailures, tt.Epoch())
					}()
				}
			}
		}
	} else if *chaosSpec != "" {
		return fmt.Errorf("-chaos requires a tcp -transport")
	} else if *flightPath != "" {
		return fmt.Errorf("-flight requires a tcp -transport")
	}
	finishTrace := func() error {
		if fl != nil {
			if err := fl.DumpFile(*flightPath); err != nil {
				return err
			}
			fmt.Printf("flight: wrote %s (%d events)\n", *flightPath, fl.Len())
		}
		if !tr.Enabled() {
			return nil
		}
		fmt.Println(tr.Summary())
		if err := tr.WriteFiles(*trOut, *trEv); err != nil {
			return err
		}
		for _, p := range []string{*trOut, *trEv} {
			if p != "" {
				fmt.Printf("trace: wrote %s\n", p)
			}
		}
		return nil
	}

	switch *algo {
	case "maxflow":
		var dg *graph.DiGraph
		var err error
		if *path != "" {
			dg, err = readArcs(*path)
			if err != nil {
				return err
			}
		} else {
			dg = graph.LayeredDAG(*layers, *width, 2, *maxCap, *seed)
		}
		t := *sink
		if t < 0 {
			t = dg.N() - 1
		}
		res, err := core.MaxFlowWith(dg, *source, t, ro)
		if err != nil {
			return err
		}
		fmt.Printf("max flow: value=%d (n=%d m=%d U=%d)\n", res.Value, dg.N(), dg.M(), dg.MaxCapacity())
		fmt.Printf("  IPM iterations=%d, final augmentations=%d\n", res.IPMIterations, res.FinalAugmentations)
		fmt.Println(res.Rounds.Breakdown)
		ff, err := maxflow.FordFulkerson(dg, *source, t, nil)
		if err != nil {
			return err
		}
		fmt.Printf("baselines: Ford-Fulkerson %d rounds, trivial gather %d rounds\n",
			ff.Rounds, maxflow.TrivialRounds(dg))
		return finishTrace()

	case "mincost":
		var dg *graph.DiGraph
		var sigma []int64
		if *path != "" {
			var err error
			dg, err = readArcs(*path)
			if err != nil {
				return err
			}
			// Demand: one unit from -source to -sink.
			t := *sink
			if t < 0 {
				t = dg.N() - 1
			}
			sigma = make([]int64, dg.N())
			sigma[*source] = 1
			sigma[t] = -1
		} else {
			dg, sigma = assignmentInstance(*n, *n, 3, *maxW, *seed)
		}
		res, err := core.MinCostFlowWith(dg, sigma, ro)
		if err != nil {
			return err
		}
		fmt.Printf("min-cost flow: cost=%d (n=%d m=%d W=%d)\n", res.Cost, dg.N(), dg.M(), dg.MaxCost())
		fmt.Printf("  IPM iterations=%d, repair augmentations=%d\n", res.ProgressIterations, res.RepairAugmentations)
		fmt.Println(res.Rounds.Breakdown)
		_, oracleCost, err := mcmf.Solve(dg, sigma)
		if err != nil {
			return err
		}
		fmt.Printf("oracle agreement: %v (SSP cost %d)\n", oracleCost == res.Cost, oracleCost)
		return finishTrace()

	default:
		return fmt.Errorf("unknown -algo %q (want maxflow or mincost)", *algo)
	}
}

// startDebug creates the process-wide metrics registry, points the clique
// engine at it, and serves the debug endpoints on addr (plus the flight
// recorder on /debug/flight when one is attached).
func startDebug(addr string, fl *trace.Flight) (*metrics.DebugServer, *metrics.Registry, error) {
	reg := metrics.NewRegistry()
	cc.SetMetrics(reg)
	linalg.SetMetrics(reg)
	srv, err := metrics.StartDebugServerWith(addr, reg, map[string]http.Handler{
		"/debug/flight": fl.Handler(),
	})
	if err != nil {
		return nil, nil, err
	}
	fmt.Printf("debug: serving /metrics and /debug/pprof on http://%s\n", srv.Addr())
	return srv, reg, nil
}

// holdAndClose keeps the debug server up for the grace period (so short
// runs can still be scraped) and shuts it down.
func holdAndClose(srv *metrics.DebugServer, hold time.Duration) {
	if hold > 0 {
		fmt.Printf("debug: holding %s for scrapes of http://%s\n", hold, srv.Addr())
		time.Sleep(hold)
	}
	srv.Close()
	cc.SetMetrics(nil)
	linalg.SetMetrics(nil)
}

func assignmentInstance(left, right, degree int, maxCost int64, seed int64) (*graph.DiGraph, []int64) {
	rng := newRng(seed)
	dg := graph.NewDi(left + right)
	sigma := make([]int64, left+right)
	for u := 0; u < left; u++ {
		partner := u % right
		dg.MustAddArc(u, left+partner, 1, 1+rng.Int63n(maxCost))
		for d := 1; d < degree; d++ {
			dg.MustAddArc(u, left+rng.Intn(right), 1, 1+rng.Int63n(maxCost))
		}
		sigma[u] = 1
		sigma[left+partner]--
	}
	return dg, sigma
}

func readArcs(path string) (*graph.DiGraph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	dg, err := graph.ReadArcList(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return dg, nil
}
