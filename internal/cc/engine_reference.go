package cc

import "fmt"

// runReference is the original map-based sequential implementation of Run,
// kept verbatim as a differential-testing oracle and benchmark baseline for
// the worker-pool engine. It allocates fresh per-round state (duplicate-pair
// map, BCC map, inbox slices, payload copies) on every round, which is
// exactly the cost profile the production engine eliminates.
//
// Semantics differ from Run in one deliberate way: the round-limit check
// fires before the zero-communication completion check, so a program whose
// final, communication-free step lands on r == maxRounds is (wrongly)
// rejected. Run fixes that ordering; the equivalence tests therefore compare
// the two only on programs that finish strictly inside their budget.
func (e *Engine) runReference(step Step, maxRounds int) (int64, error) {
	inboxes := make([][]Message, e.n)
	start := e.rounds
	for r := 0; ; r++ {
		if int64(r) >= int64(maxRounds) {
			return e.rounds - start, fmt.Errorf("%w: %d rounds", ErrRoundLimit, maxRounds)
		}
		next := make([][]Message, e.n)
		sentPair := make(map[[2]int]bool)
		firstData := make(map[int][]int64) // BCC: the round's message per node
		var sendErr error
		allDone := true
		anySent := false
		for v := 0; v < e.n; v++ {
			node := v
			send := func(to int, data ...int64) {
				if sendErr != nil {
					return
				}
				if to < 0 || to >= e.n || to == node {
					sendErr = fmt.Errorf("%w: node %d -> %d (n=%d)", ErrBadRecipient, node, to, e.n)
					return
				}
				if len(data) > e.maxWords {
					sendErr = fmt.Errorf("%w: node %d sent %d words (budget %d)",
						ErrMessageTooWide, node, len(data), e.maxWords)
					return
				}
				if e.broadcast {
					if prev, ok := firstData[node]; ok {
						if !equalWords(prev, data) {
							sendErr = fmt.Errorf("%w: node %d in round %d", ErrNotBroadcast, node, r)
							return
						}
					} else {
						firstData[node] = append([]int64(nil), data...)
					}
				}
				key := [2]int{node, to}
				if sentPair[key] {
					sendErr = fmt.Errorf("%w: %d -> %d in round %d", ErrDuplicatePair, node, to, r)
					return
				}
				sentPair[key] = true
				anySent = true
				e.messages++
				next[to] = append(next[to], Message{From: node, Data: append([]int64(nil), data...)})
			}
			if !step(node, r, inboxes[v], send) {
				allDone = false
			}
			if sendErr != nil {
				return e.rounds - start, sendErr
			}
		}
		if allDone && !anySent {
			// The final step consumed no communication; it is internal
			// computation and costs no round.
			return e.rounds - start, nil
		}
		e.rounds++
		inboxes = next
	}
}
