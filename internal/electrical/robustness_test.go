package electrical

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"lapcc/internal/linalg"
	"lapcc/internal/rounds"
)

// TestSessionBudgetExhaustion: an exhausted wall budget must abort
// Potentials with the typed error before any solve work happens.
func TestSessionBudgetExhaustion(t *testing.T) {
	g := sessionTestGraph(t, 16, 31)
	budget := rounds.NewBudget(0, time.Nanosecond).Bind(nil)
	time.Sleep(time.Millisecond)
	s, err := NewSession(g, SessionOptions{Budget: budget})
	if err != nil {
		t.Fatal(err)
	}
	b := linalg.NewVec(16)
	b[0], b[15] = 1, -1
	_, err = s.Potentials(b, 1e-8, "x")
	if !errors.Is(err, rounds.ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
	if s.Stats().Solves != 0 {
		t.Fatal("solve ran past an exhausted budget")
	}
}

// TestSessionDenseFallbackRescues: conductances spanning twenty-four orders
// of magnitude break CG (negative curvature from rounding); the
// session must hand the solve to the exact dense path instead of failing.
func TestSessionDenseFallbackRescues(t *testing.T) {
	g := sessionTestGraph(t, 24, 33)
	s, err := NewSession(g, SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(35))
	w := make([]float64, g.M())
	for i := range w {
		if rng.Intn(2) == 0 {
			w[i] = 1e-12 * (1 + rng.Float64())
		} else {
			w[i] = 1e12 * (1 + rng.Float64())
		}
	}
	if err := s.Reweight(w); err != nil {
		t.Fatal(err)
	}
	b := linalg.NewVec(24)
	b[0], b[23] = 1, -1
	x, err := s.Potentials(b, 1e-14, "x")
	if err != nil {
		t.Fatalf("fallback did not rescue the solve: %v", err)
	}
	if s.Stats().DenseFallbacks != 1 {
		t.Fatalf("DenseFallbacks = %d, want 1", s.Stats().DenseFallbacks)
	}
	// The fallback result matches the reference dense solve bit for bit.
	want, err := linalg.LaplacianPseudoSolve(s.Laplacian().Dense(), b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if x[i] != want[i] {
			t.Fatalf("fallback diverges from reference at %d", i)
		}
	}
}

// TestSessionNoFallbackPinsHistoricalFailure: with NoFallback the same
// doomed solve must surface the iterative error.
func TestSessionNoFallbackPinsHistoricalFailure(t *testing.T) {
	g := sessionTestGraph(t, 24, 33)
	s, err := NewSession(g, SessionOptions{NoFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(35))
	w := make([]float64, g.M())
	for i := range w {
		if rng.Intn(2) == 0 {
			w[i] = 1e-12 * (1 + rng.Float64())
		} else {
			w[i] = 1e12 * (1 + rng.Float64())
		}
	}
	if err := s.Reweight(w); err != nil {
		t.Fatal(err)
	}
	b := linalg.NewVec(24)
	b[0], b[23] = 1, -1
	if _, err := s.Potentials(b, 1e-14, "x"); err == nil {
		t.Fatal("NoFallback solve succeeded where CG cannot")
	}
}
