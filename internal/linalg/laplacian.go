package linalg

import (
	"fmt"
	"math"

	"lapcc/internal/graph"
)

// Operator is a symmetric linear operator on R^n, the abstraction consumed
// by the iterative solvers. Laplacians, dense matrices, and composed
// preconditioned operators all implement it.
type Operator interface {
	// Dim returns n.
	Dim() int
	// Apply computes dst = A*src. dst and src must not alias.
	Apply(dst, src Vec)
}

// Laplacian is the graph Laplacian L = D - A of a weighted undirected graph,
// applied matrix-free from the graph's edge list. In the congested clique,
// one matvec with L_G costs O(1) rounds because node v holds row v.
type Laplacian struct {
	g   *graph.Graph
	deg Vec // weighted degrees
}

var _ Operator = (*Laplacian)(nil)

// NewLaplacian returns the Laplacian operator of g.
func NewLaplacian(g *graph.Graph) *Laplacian {
	deg := NewVec(g.N())
	for _, e := range g.Edges() {
		deg[e.U] += e.W
		deg[e.V] += e.W
	}
	return &Laplacian{g: g, deg: deg}
}

// Graph returns the underlying graph.
func (l *Laplacian) Graph() *graph.Graph { return l.g }

// Dim returns the number of vertices.
func (l *Laplacian) Dim() int { return l.g.N() }

// Degrees returns the weighted degree vector (the diagonal of L). The caller
// must not modify it.
func (l *Laplacian) Degrees() Vec { return l.deg }

// Apply computes dst = L*src.
func (l *Laplacian) Apply(dst, src Vec) {
	for i := range dst {
		dst[i] = l.deg[i] * src[i]
	}
	for _, e := range l.g.Edges() {
		dst[e.U] -= e.W * src[e.V]
		dst[e.V] -= e.W * src[e.U]
	}
}

// Quad returns the quadratic form x^T L x = sum_e w_e (x_u - x_v)^2,
// computed in the numerically stable edge-difference form.
func (l *Laplacian) Quad(x Vec) float64 {
	var q float64
	for _, e := range l.g.Edges() {
		d := x[e.U] - x[e.V]
		q += e.W * d * d
	}
	return q
}

// Norm returns the L-norm ||x||_L = sqrt(x^T L x).
func (l *Laplacian) Norm(x Vec) float64 { return math.Sqrt(l.Quad(x)) }

// Dense returns the Laplacian as a dense matrix, for small-n verification.
func (l *Laplacian) Dense() *Dense {
	n := l.Dim()
	d := NewDense(n)
	for i := 0; i < n; i++ {
		d.Set(i, i, l.deg[i])
	}
	for _, e := range l.g.Edges() {
		d.Set(e.U, e.V, d.At(e.U, e.V)-e.W)
		d.Set(e.V, e.U, d.At(e.V, e.U)-e.W)
	}
	return d
}

// ScaledOperator wraps A with a scalar multiple: (c*A) x = c * (A x).
type ScaledOperator struct {
	A Operator
	C float64
}

var _ Operator = (*ScaledOperator)(nil)

// Dim returns the dimension of the wrapped operator.
func (s *ScaledOperator) Dim() int { return s.A.Dim() }

// Apply computes dst = C * (A * src).
func (s *ScaledOperator) Apply(dst, src Vec) {
	s.A.Apply(dst, src)
	dst.Scale(s.C)
}

// SumOperator is the sum of operators of equal dimension.
type SumOperator struct {
	Terms []Operator
	tmp   Vec
}

var _ Operator = (*SumOperator)(nil)

// NewSumOperator returns the operator summing the given terms. All terms
// must have the same dimension.
func NewSumOperator(terms ...Operator) (*SumOperator, error) {
	if len(terms) == 0 {
		return nil, fmt.Errorf("linalg: sum of zero operators")
	}
	n := terms[0].Dim()
	for _, t := range terms[1:] {
		if t.Dim() != n {
			return nil, fmt.Errorf("linalg: operator dimensions %d and %d differ", n, t.Dim())
		}
	}
	return &SumOperator{Terms: terms, tmp: NewVec(n)}, nil
}

// Dim returns the common dimension.
func (s *SumOperator) Dim() int { return s.Terms[0].Dim() }

// Apply computes dst = sum_i (term_i * src).
func (s *SumOperator) Apply(dst, src Vec) {
	dst.Zero()
	for _, t := range s.Terms {
		t.Apply(s.tmp, src)
		dst.AXPY(1, s.tmp)
	}
}
