package cc

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

// TestEngineFailurePropagationAndReuse pins the engine's failure contract:
// when one node violates the model mid-round while many workers are
// stepping, (1) the run aborts with the error of the lowest-indexed
// offending node — deterministically, whatever the goroutine interleaving —
// (2) no step of a later round executes, and (3) the engine remains fully
// usable for subsequent runs. Run with -race this also proves the abort path
// has no data races (make stress does exactly that).
func TestEngineFailurePropagationAndReuse(t *testing.T) {
	const n = 32
	e := NewEngine(n)
	e.SetWorkers(8)

	for trial := 0; trial < 20; trial++ {
		var stepsAfterFailure atomic.Int64
		failRound := 2
		step := func(node, round int, inbox []Message, send func(to int, data ...int64)) bool {
			if round > failRound {
				stepsAfterFailure.Add(1)
			}
			if round == failRound && (node == 5 || node == 17 || node == 29) {
				send(-1, 0) // model violation on three different workers
				return false
			}
			send((node+1)%n, int64(round))
			return round >= 5
		}
		_, err := e.Run(step, 100)
		if !errors.Is(err, ErrBadRecipient) {
			t.Fatalf("trial %d: want ErrBadRecipient, got %v", trial, err)
		}
		// Deterministic first error: node 5 is the lowest offender, so its
		// error must win regardless of which worker finished first.
		if !strings.Contains(err.Error(), "node 5 ") {
			t.Fatalf("trial %d: error not attributed to lowest node: %v", trial, err)
		}
		if got := stepsAfterFailure.Load(); got != 0 {
			t.Fatalf("trial %d: %d steps ran after the failing round", trial, got)
		}

		// The engine must be reusable: a clean program runs to completion on
		// the same instance.
		count := func(node, round int, inbox []Message, send func(to int, data ...int64)) bool {
			if round == 0 {
				send((node+1)%n, int64(node))
				return false
			}
			return true
		}
		if _, err := e.Run(count, 10); err != nil {
			t.Fatalf("trial %d: engine unusable after failure: %v", trial, err)
		}
	}
}

// TestEngineFailurePropagationUnderFaults: the abort contract holds with a
// fault plan installed (the faulty merge path never runs on an aborted
// round).
func TestEngineFailurePropagationUnderFaults(t *testing.T) {
	const n = 16
	e := NewEngine(n)
	e.SetWorkers(4)
	e.SetFaults(&FaultPlan{Seed: 1, Drop: 0.2, Delay: 0.2})
	step := func(node, round int, inbox []Message, send func(to int, data ...int64)) bool {
		if round == 1 && node == 7 {
			send(n+5, 0)
			return false
		}
		send((node+1)%n, int64(round))
		return round >= 3
	}
	_, err := e.Run(step, 50)
	if !errors.Is(err, ErrBadRecipient) {
		t.Fatalf("want ErrBadRecipient, got %v", err)
	}
	// Reuse under the same plan: a clean program still completes (faults
	// only delay it).
	clean := func(node, round int, inbox []Message, send func(to int, data ...int64)) bool {
		if round == 0 {
			send((node+1)%n, 1)
			return false
		}
		return true
	}
	if _, err := e.Run(clean, 50); err != nil {
		t.Fatalf("engine unusable after failure under faults: %v", err)
	}
}
