package linalg

import (
	"fmt"
	"math"
)

// PreconCheby implements the preconditioned Chebyshev iteration of
// Theorem 2.2 (Peng's formulation): given symmetric PSD operators A and B
// with A <= B <= kappa*A (in the Loewner order), it approximates A^+ b to
// relative error eps in the A-norm using O(sqrt(kappa) * log(1/eps))
// iterations, each consisting of one matvec with A, one solve with B, and a
// constant number of vector operations.
//
// In the congested-clique accounting of Theorem 1.1, the matvec with A = L_G
// costs O(1) rounds and the B-solve costs zero rounds because the sparsifier
// is globally known; the caller charges those costs per iteration.

// ChebyOptions configures PreconCheby.
type ChebyOptions struct {
	// Kappa is the relative condition number with A <= B <= Kappa*A.
	// Must be >= 1.
	Kappa float64
	// Eps is the target relative error in the A-norm, in (0, 1/2].
	Eps float64
	// MaxIter optionally caps iterations; zero means the theory bound
	// ceil(sqrt(Kappa) * ln(2/Eps)) + 1.
	MaxIter int
	// OnIteration, if non-nil, is invoked once per iteration — the hook the
	// congested-clique driver uses to charge per-iteration round costs.
	OnIteration func()
	// X0, if non-nil, warm-starts the iteration from the given guess instead
	// of zero: the session layer seeds it with the previous solve's
	// potentials, so the polynomial only has to contract the (small)
	// remaining error. X0 is read, never modified. The iteration count is
	// unchanged — warm starting improves the achieved residual, not the
	// worst-case bound — so round accounting is identical either way.
	X0 Vec
	// StagnationWindow, when positive, enables plateau detection on the
	// residual the iteration already maintains: if the relative residual
	// changes by less than 1% per iteration for that many consecutive
	// iterations, PreconCheby stops early with an error unwrapping to
	// ErrStagnated and the iterate built so far. A flat residual means the
	// preconditioner solve is too loose (the iteration is pinned at the
	// inner solver's floor) — escalating is cheaper than finishing the
	// prescribed iteration count. Flatness, not lack of improvement, is
	// the signal: Chebyshev's l2 residual legitimately overshoots its
	// starting value by large factors mid-run (the polynomial's transient
	// hump) before contracting, so a healthy run is far from flat. Zero
	// disables the check (bit-identical to the historical behavior).
	StagnationWindow int
	// StagnationTol, when positive, restricts plateau detection to
	// residuals still above this relative level: a run that has already
	// contracted below the caller's target and merely idles at its
	// floating-point floor is converged, not stuck, and finishes its
	// prescribed iteration count — keeping round accounting identical to a
	// run without the window. Zero treats every flat stretch as stagnation.
	StagnationTol float64
	// Pool, if non-nil, runs the iteration's vector updates and residual
	// norms on the given worker pool. Like CGOptions.Pool, results are
	// bit-identical with and without it. Nil runs sequentially.
	Pool *Pool
}

// ChebyResult reports a PreconCheby run.
type ChebyResult struct {
	Iterations int
}

// PreconCheby runs the preconditioned Chebyshev iteration. bSolve must
// return an (approximate) solution of B y = r; for Laplacian preconditioners
// it should project out the nullspace. The returned x approximates A^+ b.
func PreconCheby(a Operator, bSolve func(Vec) (Vec, error), b Vec, opts ChebyOptions) (Vec, ChebyResult, error) {
	n := a.Dim()
	if len(b) != n {
		return nil, ChebyResult{}, fmt.Errorf("linalg: rhs length %d for operator dimension %d", len(b), n)
	}
	if opts.Kappa < 1 {
		return nil, ChebyResult{}, fmt.Errorf("linalg: kappa %v < 1", opts.Kappa)
	}
	if opts.Eps <= 0 || opts.Eps > 0.5 {
		return nil, ChebyResult{}, fmt.Errorf("linalg: eps %v outside (0, 1/2]", opts.Eps)
	}

	// The preconditioned operator B^{-1}A has spectrum (on the range) inside
	// [1/kappa, 1].
	lamMin := 1 / opts.Kappa
	lamMax := 1.0
	iters := opts.MaxIter
	if iters == 0 {
		iters = int(math.Ceil(math.Sqrt(opts.Kappa)*math.Log(2/opts.Eps))) + 1
	}

	theta := (lamMax + lamMin) / 2
	delta := (lamMax - lamMin) / 2

	pool := opts.Pool
	x := NewVec(n)
	r := b.Clone()
	av := NewVec(n)
	if opts.X0 != nil {
		if len(opts.X0) != n {
			return nil, ChebyResult{}, fmt.Errorf("linalg: warm start length %d for operator dimension %d", len(opts.X0), n)
		}
		// Shifted problem: iterate on A y = b - A x0 and accumulate into
		// x = x0 + y. Both branches below only ever touch x and r, so
		// seeding them here is the entire warm start.
		copy(x, opts.X0)
		a.Apply(av, x)
		pool.AXPY(r, -1, av)
	}

	// Plateau detection state; bnorm stays zero when the check is disabled.
	var bnorm float64
	if opts.StagnationWindow > 0 {
		bnorm = pool.Norm2(b)
	}
	prevRes := -1.0
	flat := 0
	stagnated := func(k int) (bool, error) {
		if bnorm == 0 {
			return false, nil
		}
		res := pool.Norm2(r) / bnorm
		if prevRes >= 0 && math.Abs(res-prevRes) <= stagnationImprovement*prevRes {
			flat++
		} else {
			flat = 0
		}
		prevRes = res
		if flat >= opts.StagnationWindow && res > opts.StagnationTol {
			return true, fmt.Errorf("%w: residual flat at %v for %d iterations (above tolerance %v after %d iterations)",
				ErrStagnated, res, flat, opts.StagnationTol, k+1)
		}
		return false, nil
	}

	if delta < 1e-14 {
		// kappa ~ 1: B is (a scalar multiple of) A; Richardson steps suffice.
		for k := 0; k < iters; k++ {
			if opts.OnIteration != nil {
				opts.OnIteration()
			}
			z, err := bSolve(r)
			if err != nil {
				return nil, ChebyResult{}, err
			}
			pool.Scale(z, 1/theta)
			pool.AXPY(x, 1, z)
			a.Apply(av, x)
			copy(r, b)
			pool.AXPY(r, -1, av)
			if stuck, err := stagnated(k); stuck {
				return x, ChebyResult{Iterations: k + 1}, err
			}
		}
		return x, ChebyResult{Iterations: iters}, nil
	}

	sigma := theta / delta
	rho := 1 / sigma

	if opts.OnIteration != nil {
		opts.OnIteration()
	}
	z, err := bSolve(r)
	if err != nil {
		return nil, ChebyResult{}, err
	}
	d := z.Clone()
	pool.Scale(d, 1/theta)

	count := 1
	for k := 1; k < iters; k++ {
		if opts.OnIteration != nil {
			opts.OnIteration()
		}
		pool.AXPY(x, 1, d)
		a.Apply(av, d)
		pool.AXPY(r, -1, av)
		if stuck, serr := stagnated(k); stuck {
			return x, ChebyResult{Iterations: count}, serr
		}
		z, err = bSolve(r)
		if err != nil {
			return nil, ChebyResult{}, err
		}
		rhoNext := 1 / (2*sigma - rho)
		pool.Range(n, func(lo, hi int) {
			ds, zs := d[lo:hi], z[lo:hi]
			for i := range ds {
				ds[i] = rhoNext*rho*ds[i] + 2*rhoNext/delta*zs[i]
			}
		})
		rho = rhoNext
		count++
	}
	pool.AXPY(x, 1, d)
	return x, ChebyResult{Iterations: count}, nil
}

// StagnationWindowFor returns a plateau-detection window matched to the
// Chebyshev method's natural timescale for a given kappa: the residual only
// contracts meaningfully over Theta(sqrt(kappa)) iterations (the slow-start
// transient of the Chebyshev polynomial), so a shorter window would misread
// a legitimately converging run as a plateau.
func StagnationWindowFor(kappa float64) int {
	return int(math.Ceil(2*math.Sqrt(math.Max(kappa, 1)))) + 10
}

// ChebyIterationBound returns the iteration count the theory prescribes for
// a given kappa and eps: O(sqrt(kappa) log(1/eps)). Exposed so experiments
// can compare measured against predicted counts.
func ChebyIterationBound(kappa, eps float64) int {
	return int(math.Ceil(math.Sqrt(kappa)*math.Log(2/eps))) + 1
}
