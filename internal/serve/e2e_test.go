package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"lapcc/internal/core"
	"lapcc/internal/graph"
	"lapcc/internal/linalg"
	"lapcc/internal/serve"
)

func startDaemon(t *testing.T, opts serve.Options) (*serve.Server, *httptest.Server) {
	t.Helper()
	s := serve.New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, req, resp any) (int, *serve.WireError) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		var env struct {
			Error serve.WireError `json:"error"`
		}
		if err := json.NewDecoder(hr.Body).Decode(&env); err != nil {
			t.Fatalf("status %d with undecodable error body: %v", hr.StatusCode, err)
		}
		return hr.StatusCode, &env.Error
	}
	if err := json.NewDecoder(hr.Body).Decode(resp); err != nil {
		t.Fatal(err)
	}
	return hr.StatusCode, nil
}

// testGraph returns a deterministic 6-regular solve instance with all
// weights in one binary class (so reweights stay on the exact-reuse tier).
func testGraph(t *testing.T, variant int) *graph.Graph {
	t.Helper()
	g, err := graph.RandomRegular(40, 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.M(); i++ {
		h := uint64(i)*2654435761 + uint64(variant)*40503 + 17
		if err := g.SetWeight(i, 1.1+0.8*float64(h%1024)/1024); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func rhs(n, pole int) []float64 {
	b := make([]float64, n)
	b[pole], b[(pole+1)%n] = 1, -1
	return b
}

// TestSolveBitIdentical pins the serving layer's differential contract:
// daemon responses — cold AND pooled — are bit-identical to direct facade
// calls, including the round totals. JSON round-trips float64 exactly, so
// exact equality over the wire is exact equality of the solver output.
func TestSolveBitIdentical(t *testing.T) {
	_, ts := startDaemon(t, serve.Options{})

	for variant := 0; variant < 2; variant++ {
		g := testGraph(t, variant)
		wg := serve.ToWireGraph(g)
		b := rhs(g.N(), variant)

		var got serve.SolveResponse
		if code, werr := postJSON(t, ts.URL+"/v1/solve", serve.SolveRequest{
			Graph: &wg, RHS: [][]float64{b},
		}, &got); code != http.StatusOK {
			t.Fatalf("variant %d: status %d: %+v", variant, code, werr)
		}
		if wantCached := variant > 0; got.Cached != wantCached {
			t.Fatalf("variant %d: cached=%v, want %v", variant, got.Cached, wantCached)
		}

		want, err := core.SolveLaplacianWith(g, linalg.Vec(b), 1e-8, core.RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if len(got.X) != 1 || len(got.X[0]) != len(want.X) {
			t.Fatalf("variant %d: bad X shape", variant)
		}
		for i := range want.X {
			if got.X[0][i] != want.X[i] {
				t.Fatalf("variant %d: x[%d]: daemon %v != direct %v", variant, i, got.X[0][i], want.X[i])
			}
		}
		if got.Rounds.Total != want.Rounds.Total || got.Rounds.Charged != want.Rounds.Charged {
			t.Fatalf("variant %d: rounds: daemon %+v != direct %+v", variant, got.Rounds, want.Rounds)
		}
		if got.Iterations[0] != want.Iterations {
			t.Fatalf("variant %d: iterations: daemon %d != direct %d", variant, got.Iterations[0], want.Iterations)
		}
	}
}

// TestSparsifyBitIdentical is the same differential for the sparsify op:
// the pooled chain (exact-only reuse) must return the same H, alpha, and
// rounds as a fresh SparsifyWith.
func TestSparsifyBitIdentical(t *testing.T) {
	_, ts := startDaemon(t, serve.Options{})

	for variant := 0; variant < 2; variant++ {
		g := testGraph(t, variant)
		wg := serve.ToWireGraph(g)
		var got serve.SparsifyResponse
		if code, werr := postJSON(t, ts.URL+"/v1/sparsify", serve.SparsifyRequest{Graph: &wg}, &got); code != http.StatusOK {
			t.Fatalf("variant %d: status %d: %+v", variant, code, werr)
		}
		want, err := core.SparsifyWith(g, core.RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		wantH := serve.ToWireGraph(want.H)
		if got.H.N != wantH.N || len(got.H.Edges) != len(wantH.Edges) {
			t.Fatalf("variant %d: H shape differs", variant)
		}
		for i := range wantH.Edges {
			if got.H.Edges[i] != wantH.Edges[i] {
				t.Fatalf("variant %d: H edge %d: daemon %v != direct %v", variant, i, got.H.Edges[i], wantH.Edges[i])
			}
		}
		if got.Alpha != want.Alpha {
			t.Fatalf("variant %d: alpha: daemon %v != direct %v", variant, got.Alpha, want.Alpha)
		}
		if got.Rounds.Total != want.Rounds.Total {
			t.Fatalf("variant %d: rounds: daemon %+v != direct %+v", variant, got.Rounds, want.Rounds)
		}
	}
}

// TestFlowOpsBitIdentical covers the stateless ops: orient, maxflow,
// mincostflow daemon responses equal direct facade calls.
func TestFlowOpsBitIdentical(t *testing.T) {
	_, ts := startDaemon(t, serve.Options{})

	g := testGraph(t, 0)
	wg := serve.ToWireGraph(g)
	var ores serve.OrientResponse
	if code, werr := postJSON(t, ts.URL+"/v1/orient", serve.OrientRequest{Graph: &wg}, &ores); code != http.StatusOK {
		t.Fatalf("orient: status %d: %+v", code, werr)
	}
	owant, err := core.EulerianOrientWith(g, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range owant.Orient {
		if ores.Orient[i] != owant.Orient[i] {
			t.Fatalf("orient[%d] differs", i)
		}
	}
	if ores.Rounds.Total != owant.Rounds.Total {
		t.Fatalf("orient rounds: daemon %+v != direct %+v", ores.Rounds, owant.Rounds)
	}

	dg := graph.LayeredDAG(2, 4, 2, 4, 5)
	wd := serve.ToWireDiGraph(dg)
	var mf serve.MaxFlowResponse
	if code, werr := postJSON(t, ts.URL+"/v1/maxflow", serve.MaxFlowRequest{
		Graph: &wd, Source: 0, Sink: dg.N() - 1,
	}, &mf); code != http.StatusOK {
		t.Fatalf("maxflow: status %d: %+v", code, werr)
	}
	mfwant, err := core.MaxFlowWith(dg, 0, dg.N()-1, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if mf.Value != mfwant.Value || mf.Rounds.Total != mfwant.Rounds.Total {
		t.Fatalf("maxflow: daemon (%d, %+v) != direct (%d, %+v)", mf.Value, mf.Rounds, mfwant.Value, mfwant.Rounds)
	}
	for i := range mfwant.Flow {
		if mf.Flow[i] != mfwant.Flow[i] {
			t.Fatalf("maxflow flow[%d] differs", i)
		}
	}

	udg := graph.LayeredDAG(2, 4, 2, 1, 6)
	sigma := make([]int64, udg.N())
	sigma[0], sigma[udg.N()-1] = 1, -1
	wu := serve.ToWireDiGraph(udg)
	var mc serve.MinCostFlowResponse
	if code, werr := postJSON(t, ts.URL+"/v1/mincostflow", serve.MinCostFlowRequest{
		Graph: &wu, Sigma: sigma,
	}, &mc); code != http.StatusOK {
		t.Fatalf("mincostflow: status %d: %+v", code, werr)
	}
	mcwant, err := core.MinCostFlowWith(udg, sigma, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if mc.Cost != mcwant.Cost || mc.Rounds.Total != mcwant.Rounds.Total {
		t.Fatalf("mincostflow: daemon (%d, %+v) != direct (%d, %+v)", mc.Cost, mc.Rounds, mcwant.Cost, mcwant.Rounds)
	}
}

// TestBudgetExceeded pins the admission-control error shape: a request
// whose rounds budget cannot cover the run fails with a typed 429 carrying
// code "budget_exceeded" and the partial round count.
func TestBudgetExceeded(t *testing.T) {
	_, ts := startDaemon(t, serve.Options{})
	g := testGraph(t, 0)
	wg := serve.ToWireGraph(g)
	var got serve.SolveResponse
	code, werr := postJSON(t, ts.URL+"/v1/solve", serve.SolveRequest{
		Graph: &wg, RHS: [][]float64{rhs(g.N(), 0)},
		Budget: &serve.WireBudget{Rounds: 1},
	}, &got)
	if code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", code)
	}
	if werr.Code != "budget_exceeded" {
		t.Fatalf("code %q, want budget_exceeded", werr.Code)
	}
	if werr.Rounds <= 0 {
		t.Fatalf("partial rounds %d, want > 0", werr.Rounds)
	}

	// The exhausted budget must not poison the pooled session: the same
	// request without a budget succeeds afterwards.
	if code, werr := postJSON(t, ts.URL+"/v1/solve", serve.SolveRequest{
		Graph: &wg, RHS: [][]float64{rhs(g.N(), 0)},
	}, &got); code != http.StatusOK {
		t.Fatalf("post-budget solve: status %d: %+v", code, werr)
	}
}

// TestBatchedRHS pins the batched-lane contract: a k-RHS request returns k
// potential vectors, each bit-identical to its single-RHS counterpart, and
// one round total for the lane.
func TestBatchedRHS(t *testing.T) {
	_, ts := startDaemon(t, serve.Options{})
	g := testGraph(t, 0)
	wg := serve.ToWireGraph(g)
	lanes := [][]float64{rhs(g.N(), 0), rhs(g.N(), 11), rhs(g.N(), 23)}
	var got serve.SolveResponse
	if code, werr := postJSON(t, ts.URL+"/v1/solve", serve.SolveRequest{Graph: &wg, RHS: lanes}, &got); code != http.StatusOK {
		t.Fatalf("status %d: %+v", code, werr)
	}
	if len(got.X) != len(lanes) {
		t.Fatalf("got %d solutions for %d right-hand sides", len(got.X), len(lanes))
	}
	sess, err := core.NewLaplacianSession(g, core.SessionOptions{ExactReuse: true})
	if err != nil {
		t.Fatal(err)
	}
	for k, b := range lanes {
		want, err := sess.Solve(linalg.Vec(b), 1e-8)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.X {
			if got.X[k][i] != want.X[i] {
				t.Fatalf("lane %d: x[%d] differs", k, i)
			}
		}
	}
}

// TestConcurrentMixedWorkload drives concurrent mixed requests with
// per-request budgets through the daemon (run under -race by `make race`):
// every admitted request must succeed and return the right answer.
func TestConcurrentMixedWorkload(t *testing.T) {
	_, ts := startDaemon(t, serve.Options{MaxInflight: 64})

	dg := graph.LayeredDAG(2, 4, 2, 4, 5)
	wantMF, err := core.MaxFlowWith(dg.Clone(), 0, dg.N()-1, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers*3)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g := testGraph(t, w%2)
			wgr := serve.ToWireGraph(g)
			var sres serve.SolveResponse
			if code, werr := postJSON(t, ts.URL+"/v1/solve", serve.SolveRequest{
				Graph: &wgr, RHS: [][]float64{rhs(g.N(), w)},
				Budget: &serve.WireBudget{Rounds: 1_000_000},
			}, &sres); code != http.StatusOK {
				errs <- fmt.Errorf("worker %d solve: status %d: %+v", w, code, werr)
				return
			}
			wd := serve.ToWireDiGraph(dg)
			var mf serve.MaxFlowResponse
			if code, werr := postJSON(t, ts.URL+"/v1/maxflow", serve.MaxFlowRequest{
				Graph: &wd, Source: 0, Sink: dg.N() - 1,
			}, &mf); code != http.StatusOK {
				errs <- fmt.Errorf("worker %d maxflow: status %d: %+v", w, code, werr)
				return
			}
			if mf.Value != wantMF.Value {
				errs <- fmt.Errorf("worker %d maxflow: value %d, want %d", w, mf.Value, wantMF.Value)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestLoadgenInProcess drives the shared load generator against an
// in-process daemon — the same path `make serve-smoke` and the benchgate
// serve suite use.
func TestLoadgenInProcess(t *testing.T) {
	_, ts := startDaemon(t, serve.Options{MaxInflight: 32})
	res, err := serve.RunLoad(serve.LoadOptions{
		BaseURL: ts.URL, Requests: 20, Concurrency: 4, N: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d/%d loadgen requests failed: %+v", res.Errors, res.Requests, res.PerOp)
	}
	m := res.NsMetrics()
	if m["Serve/solve@p50"] <= 0 || m["Serve/throughput"] <= 0 {
		t.Fatalf("degenerate metrics: %v", m)
	}
}
