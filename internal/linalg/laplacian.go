package linalg

import (
	"fmt"
	"math"
	"sync"

	"lapcc/internal/graph"
)

// Operator is a symmetric linear operator on R^n, the abstraction consumed
// by the iterative solvers. Laplacians, dense matrices, and composed
// preconditioned operators all implement it.
type Operator interface {
	// Dim returns n.
	Dim() int
	// Apply computes dst = A*src. dst and src must not alias.
	Apply(dst, src Vec)
}

// Laplacian is the graph Laplacian L = D - A of a weighted undirected graph,
// applied matrix-free from the graph's edge list. In the congested clique,
// one matvec with L_G costs O(1) rounds because node v holds row v.
//
// Parallel edges enter L only through the sum of their weights per vertex
// pair, so Apply runs over a coalesced pair list: the pair grouping is fixed
// by the topology at construction and the summed pair weights are cached
// alongside the degrees. Multigraph supports — such as the flow IPMs', where
// all m preconditioner edges share one endpoint pair — apply in time
// proportional to the number of distinct pairs, not edges. Weight mutations
// (graph.SetWeight) must be followed by Refresh, which recomputes both
// caches in the same edge order as construction, keeping a refreshed
// Laplacian bit-identical to one built fresh on the same weights.
type Laplacian struct {
	g      *graph.Graph
	deg    Vec     // weighted degrees (diagonal of L)
	cu, cv []int32 // coalesced off-diagonal: distinct vertex pairs ...
	cw     Vec     // ... and the summed weight per pair
	egroup []int32 // edge index -> pair index
	gen    uint64  // graph topology generation the pair cache was built at

	pool *Pool // nil = sequential Apply (the historical path)

	// CSR over pair incidences, built only when a pool is attached: row u
	// lists the pairs touching u in ascending pair order, which makes the
	// row-parallel Apply accumulate each dst[u] in exactly the sequential
	// pair loop's floating-point order (owner-computes, no merge).
	rowPtr   []int32 // n+1 offsets into rowPair/rowOther
	rowPair  []int32 // pair index per incidence
	rowOther []int32 // opposite endpoint per incidence
}

var _ Operator = (*Laplacian)(nil)

// NewLaplacian returns the Laplacian operator of g.
func NewLaplacian(g *graph.Graph) *Laplacian {
	l := &Laplacian{g: g, deg: NewVec(g.N())}
	l.buildPairs()
	l.Refresh()
	return l
}

// buildPairs assigns each edge to its unordered-pair group in
// first-occurrence order. For small vertex counts a dense n^2 table keeps
// this O(n^2 + m) with array-index constants; larger graphs fall back to a
// hash map.
func (l *Laplacian) buildPairs() {
	m := l.g.M()
	n := l.g.N()
	l.egroup = make([]int32, m)
	l.cu = l.cu[:0]
	l.cv = l.cv[:0]
	pair := func(u, v int) int64 {
		if u > v {
			u, v = v, u
		}
		return int64(u)*int64(n) + int64(v)
	}
	assign := func(i int, u, v int, group int32) int32 {
		if group < 0 {
			group = int32(len(l.cu))
			if u > v {
				u, v = v, u
			}
			l.cu = append(l.cu, int32(u))
			l.cv = append(l.cv, int32(v))
		}
		l.egroup[i] = group
		return group
	}
	if int64(n)*int64(n) <= 1<<18 {
		table := make([]int32, n*n)
		for i := range table {
			table[i] = -1
		}
		for i, e := range l.g.Edges() {
			k := pair(e.U, e.V)
			table[k] = assign(i, e.U, e.V, table[k])
		}
	} else {
		table := make(map[int64]int32, m)
		for i, e := range l.g.Edges() {
			k := pair(e.U, e.V)
			group, ok := table[k]
			if !ok {
				group = -1
			}
			table[k] = assign(i, e.U, e.V, group)
		}
	}
	l.cw = NewVec(len(l.cu))
	l.gen = l.g.Gen()
	l.rowPtr = nil // pair indices changed; rebuild incidence rows if pooled
	if l.pool != nil {
		l.buildRows()
	}
}

// buildRows constructs the CSR incidence rows over the coalesced pairs.
// Filling in ascending pair order keeps each row's pair list sorted, the
// property the parallel Apply's bit-identity rests on.
func (l *Laplacian) buildRows() {
	n := l.g.N()
	ptr := make([]int32, n+1)
	for i := range l.cu {
		ptr[l.cu[i]+1]++
		ptr[l.cv[i]+1]++
	}
	for v := 0; v < n; v++ {
		ptr[v+1] += ptr[v]
	}
	nnz := ptr[n]
	l.rowPtr = ptr
	l.rowPair = make([]int32, nnz)
	l.rowOther = make([]int32, nnz)
	fill := make([]int32, n)
	copy(fill, ptr[:n])
	for i := range l.cu {
		u, v := l.cu[i], l.cv[i]
		l.rowPair[fill[u]], l.rowOther[fill[u]] = int32(i), v
		fill[u]++
		l.rowPair[fill[v]], l.rowOther[fill[v]] = int32(i), u
		fill[v]++
	}
}

// SetPool attaches a worker pool for Apply and Quad (nil reverts to the
// sequential path). Attaching a pool builds the CSR incidence rows once, so
// concurrent Applies afterwards are read-only on the operator. Results are
// bit-identical with and without a pool; see parallel.go for the contract.
func (l *Laplacian) SetPool(p *Pool) {
	l.pool = p
	if p != nil && l.rowPtr == nil {
		l.buildRows()
	}
}

// Pool returns the attached worker pool (nil when sequential).
func (l *Laplacian) Pool() *Pool { return l.pool }

// Graph returns the underlying graph.
func (l *Laplacian) Graph() *graph.Graph { return l.g }

// Refresh recomputes the cached weighted degrees and coalesced pair weights
// from the graph's current edge weights. Call it after mutating weights in
// place (graph.SetWeight); the summations run in the same edge order as
// NewLaplacian, so a refreshed Laplacian is bit-identical to one built fresh
// on the same weights.
//
// The pair grouping itself is rebuilt when the graph's topology generation
// moved since the cache was built. Comparing generations rather than edge
// counts matters: a RewireEdge keeps M constant but changes which pair each
// edge belongs to, and a count-based guard would silently reuse the stale
// grouping and produce a wrong operator.
func (l *Laplacian) Refresh() {
	if len(l.egroup) != l.g.M() || l.gen != l.g.Gen() {
		l.buildPairs() // topology changed since construction
	}
	l.deg.Zero()
	l.cw.Zero()
	for i, e := range l.g.Edges() {
		l.deg[e.U] += e.W
		l.deg[e.V] += e.W
		l.cw[l.egroup[i]] += e.W
	}
}

// Dim returns the number of vertices.
func (l *Laplacian) Dim() int { return l.g.N() }

// Degrees returns the weighted degree vector (the diagonal of L). The caller
// must not modify it.
func (l *Laplacian) Degrees() Vec { return l.deg }

// applyRowBlock is the vertex-block grain of the row-parallel Apply. Blocks
// are claimed dynamically, so ragged incidence rows balance out; the value
// only shifts scheduling, never results.
const applyRowBlock = 512

// Apply computes dst = L*src. Without a pool it runs the sequential
// coalesced-pair loop; with one it sweeps the CSR incidence rows with the
// output partitioned across workers. The two paths accumulate every dst[u]
// in the same floating-point order — diagonal first, then the incident pairs
// by ascending pair index — so Apply is bit-identical at any worker count.
func (l *Laplacian) Apply(dst, src Vec) {
	kernelCalls(kernelApply)
	p := l.pool
	if p == nil {
		for i := range dst {
			dst[i] = l.deg[i] * src[i]
		}
		cu, cv := l.cu, l.cv
		for i, w := range l.cw {
			u, v := cu[i], cv[i]
			dst[u] -= w * src[v]
			dst[v] -= w * src[u]
		}
		return
	}
	n := len(dst)
	nb := (n + applyRowBlock - 1) / applyRowBlock
	p.ForBlocks(nb, func(b int) {
		lo, hi := b*applyRowBlock, (b+1)*applyRowBlock
		if hi > n {
			hi = n
		}
		for u := lo; u < hi; u++ {
			s := l.deg[u] * src[u]
			for k := l.rowPtr[u]; k < l.rowPtr[u+1]; k++ {
				s -= l.cw[l.rowPair[k]] * src[l.rowOther[k]]
			}
			dst[u] = s
		}
	})
}

// Quad returns the quadratic form x^T L x = sum_e w_e (x_u - x_v)^2,
// computed in the numerically stable edge-difference form under the fixed
// block partition of parallel.go (edge lists up to one block reduce in plain
// order; the partition depends only on m, so the result is bit-identical at
// any worker count).
func (l *Laplacian) Quad(x Vec) float64 {
	edges := l.g.Edges()
	m := len(edges)
	if m <= reduceBlock {
		var q float64
		for _, e := range edges {
			d := x[e.U] - x[e.V]
			q += e.W * d * d
		}
		return q
	}
	nb := reduceBlocks(m)
	sp := getParts(nb)
	parts := *sp
	l.pool.ForBlocks(nb, func(b int) {
		lo, hi := blockSpan(m, b)
		var q float64
		for _, e := range edges[lo:hi] {
			d := x[e.U] - x[e.V]
			q += e.W * d * d
		}
		parts[b] = q
	})
	r := treeReduce(parts)
	partsPool.Put(sp)
	return r
}

// Norm returns the L-norm ||x||_L = sqrt(x^T L x).
func (l *Laplacian) Norm(x Vec) float64 { return math.Sqrt(l.Quad(x)) }

// Dense returns the Laplacian as a dense matrix, for small-n verification.
func (l *Laplacian) Dense() *Dense {
	n := l.Dim()
	d := NewDense(n)
	for i := 0; i < n; i++ {
		d.Set(i, i, l.deg[i])
	}
	for _, e := range l.g.Edges() {
		d.Set(e.U, e.V, d.At(e.U, e.V)-e.W)
		d.Set(e.V, e.U, d.At(e.V, e.U)-e.W)
	}
	return d
}

// ScaledOperator wraps A with a scalar multiple: (c*A) x = c * (A x). It is
// stateless, so concurrent Applies are safe whenever A's are.
type ScaledOperator struct {
	A Operator
	C float64
}

var _ Operator = (*ScaledOperator)(nil)

// Dim returns the dimension of the wrapped operator.
func (s *ScaledOperator) Dim() int { return s.A.Dim() }

// Apply computes dst = C * (A * src).
func (s *ScaledOperator) Apply(dst, src Vec) {
	s.A.Apply(dst, src)
	dst.Scale(s.C)
}

// SumOperator is the sum of operators of equal dimension. Apply draws its
// scratch vector from a per-operator pool instead of a shared field, so
// concurrent Applies of one composed operator — the per-slot session solves
// run in parallel — each work on private scratch and are safe whenever the
// terms' Applies are.
type SumOperator struct {
	Terms   []Operator
	scratch sync.Pool // of Vec sized to Dim()
}

var _ Operator = (*SumOperator)(nil)

// NewSumOperator returns the operator summing the given terms. All terms
// must have the same dimension.
func NewSumOperator(terms ...Operator) (*SumOperator, error) {
	if len(terms) == 0 {
		return nil, fmt.Errorf("linalg: sum of zero operators")
	}
	n := terms[0].Dim()
	for _, t := range terms[1:] {
		if t.Dim() != n {
			return nil, fmt.Errorf("linalg: operator dimensions %d and %d differ", n, t.Dim())
		}
	}
	return &SumOperator{Terms: terms}, nil
}

// Dim returns the common dimension.
func (s *SumOperator) Dim() int { return s.Terms[0].Dim() }

// Apply computes dst = sum_i (term_i * src).
func (s *SumOperator) Apply(dst, src Vec) {
	tmp, _ := s.scratch.Get().(Vec)
	if len(tmp) != len(dst) {
		tmp = NewVec(len(dst))
	}
	dst.Zero()
	for _, t := range s.Terms {
		t.Apply(tmp, src)
		dst.AXPY(1, tmp)
	}
	s.scratch.Put(tmp)
}
