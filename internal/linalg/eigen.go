package linalg

import (
	"fmt"
	"math"
)

// Eigenvalue estimation for measuring the effective approximation factor
// alpha of a sparsifier chain: if 1/alpha * L_H <= L_G <= alpha * L_H, then
// the generalized eigenvalues of the pencil (L_G, L_H) lie in
// [1/alpha, alpha]. The experiments measure lambda_max(L_H^+ L_G) and
// lambda_min via power iteration, which is internal computation (zero
// rounds) used only for reporting.

// deterministicStart fills a reproducible, non-degenerate start vector. A
// fixed quasi-random vector keeps the whole pipeline deterministic, matching
// the paper's setting.
func deterministicStart(n int) Vec {
	v := NewVec(n)
	for i := range v {
		v[i] = math.Sin(float64(i)*1.61803398875 + 0.5)
	}
	v.RemoveMean()
	if v.Norm2() == 0 {
		for i := range v {
			v[i] = float64(i%2)*2 - 1
		}
		v.RemoveMean()
	}
	return v
}

// PowerIteration estimates the largest eigenvalue of op restricted to the
// complement of the all-ones vector (the relevant space for Laplacians).
// It returns the Rayleigh-quotient estimate after iters steps.
func PowerIteration(op Operator, iters int) (float64, error) {
	n := op.Dim()
	if n == 0 {
		return 0, fmt.Errorf("linalg: power iteration on empty operator")
	}
	v := deterministicStart(n)
	w := NewVec(n)
	var lam float64
	for k := 0; k < iters; k++ {
		op.Apply(w, v)
		w.RemoveMean()
		nw := w.Norm2()
		if nw == 0 {
			return 0, nil
		}
		lam = v.Dot(w) / v.Dot(v)
		w.Scale(1 / nw)
		v, w = w, v
	}
	return lam, nil
}

// pencilOp applies x -> B^+ (A x) via the supplied B-solver.
type pencilOp struct {
	a      Operator
	bSolve func(Vec) (Vec, error)
	err    error
	tmp    Vec
}

func (p *pencilOp) Dim() int { return p.a.Dim() }

func (p *pencilOp) Apply(dst, src Vec) {
	p.a.Apply(p.tmp, src)
	y, err := p.bSolve(p.tmp)
	if err != nil {
		p.err = err
		dst.Zero()
		return
	}
	copy(dst, y)
}

// PencilMaxEig estimates lambda_max of the pencil (A, B): the largest lambda
// with A x = lambda B x on the complement of the nullspace. bSolve must
// apply B^+.
func PencilMaxEig(a Operator, bSolve func(Vec) (Vec, error), iters int) (float64, error) {
	p := &pencilOp{a: a, bSolve: bSolve, tmp: NewVec(a.Dim())}
	lam, err := PowerIteration(p, iters)
	if err != nil {
		return 0, err
	}
	if p.err != nil {
		return 0, p.err
	}
	return lam, nil
}

// PencilBounds estimates (lambdaMin, lambdaMax) of the pencil (A, B) via
// power iteration on B^+A and on A^+B (whose top eigenvalue is
// 1/lambdaMin). aSolve and bSolve must apply the respective pseudoinverses.
func PencilBounds(a, b Operator, aSolve, bSolve func(Vec) (Vec, error), iters int) (lamMin, lamMax float64, err error) {
	lamMax, err = PencilMaxEig(a, bSolve, iters)
	if err != nil {
		return 0, 0, fmt.Errorf("linalg: pencil lambda_max: %w", err)
	}
	inv, err := PencilMaxEig(b, aSolve, iters)
	if err != nil {
		return 0, 0, fmt.Errorf("linalg: pencil lambda_min: %w", err)
	}
	if inv <= 0 {
		return 0, 0, fmt.Errorf("linalg: pencil lambda_min estimate non-positive (%v)", inv)
	}
	return 1 / inv, lamMax, nil
}

// EffectiveAlpha returns the smallest alpha >= 1 such that the measured
// pencil bounds certify (1/alpha) B <= A <= alpha B, i.e.
// alpha = max(lamMax, 1/lamMin). A small safety margin covers power-
// iteration underestimation.
func EffectiveAlpha(lamMin, lamMax float64) float64 {
	alpha := lamMax
	if lamMin > 0 && 1/lamMin > alpha {
		alpha = 1 / lamMin
	}
	if alpha < 1 {
		alpha = 1
	}
	return 1.05 * alpha
}
