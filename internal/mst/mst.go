// Package mst implements minimum spanning forests in the congested clique —
// the problem that founded the model: Lotker, Patt-Shamir, Pavlov, and
// Peleg [LPSPP05] (the paper's §2.1 citation) gave the O(log log n)-round
// algorithm that first separated the clique from CONGEST.
//
// Two implementations:
//
//   - Boruvka: the classic O(log n)-round algorithm, executed with real
//     message passing over the simulator primitives (one all-to-all
//     broadcast of component labels plus one routed candidate-aggregation
//     per phase) — a second fully-measured algorithm exercising the
//     internal/cc machinery beyond Theorem 1.4;
//   - LotkerRounds: the [LPSPP05] O(log log n) cost formula, charged the
//     way the flow algorithms charge CKKL+19 APSP (DESIGN.md §3).
//
// Kruskal serves as the exact oracle for tests.
package mst

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"lapcc/internal/cc"
	"lapcc/internal/graph"
	"lapcc/internal/rounds"
)

// ErrNoEdges reports MST of an edgeless graph (the empty forest is returned
// by the algorithms; the error is reserved for malformed inputs).
var ErrNoEdges = errors.New("mst: graph has no edges")

// Kruskal returns the minimum spanning forest edge ids and total weight
// (exact oracle; ties broken by edge id, so it is deterministic).
func Kruskal(g *graph.Graph) ([]int, float64) {
	ids := make([]int, g.M())
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool {
		ea, eb := g.Edge(ids[a]), g.Edge(ids[b])
		if ea.W != eb.W {
			return ea.W < eb.W
		}
		return ids[a] < ids[b]
	})
	uf := newUnionFind(g.N())
	var forest []int
	var total float64
	for _, id := range ids {
		e := g.Edge(id)
		if uf.union(e.U, e.V) {
			forest = append(forest, id)
			total += e.W
		}
	}
	sort.Ints(forest)
	return forest, total
}

type unionFind struct {
	parent []int
	rank   []int
}

func newUnionFind(n int) *unionFind {
	u := &unionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range u.parent {
		u.parent[i] = i
	}
	return u
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) bool {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return false
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
	return true
}

// Result reports one spanning-forest computation.
type Result struct {
	// EdgeIDs are the forest edges, ascending.
	EdgeIDs []int
	// Weight is the forest's total weight.
	Weight float64
	// Phases is the number of Boruvka phases executed.
	Phases int
}

// Boruvka computes the minimum spanning forest with the classic
// O(log n)-phase algorithm over real congested-clique messages. Each phase:
//
//  1. every node broadcasts its component label (one all-to-all round), so
//     each node can locate its lightest outgoing edge internally;
//  2. candidates are routed to component leaders (batched Lenzen routing),
//     which select the per-component minimum;
//  3. leaders broadcast the chosen merge edges (one round); every node
//     applies the merges internally (pointer jumping on global knowledge).
//
// Tie-breaking by (weight, edge id) makes the result deterministic and
// cycle-free even with equal weights.
func Boruvka(g *graph.Graph, led *rounds.Ledger) (*Result, error) {
	n := g.N()
	comp := make([]int, n)
	for v := range comp {
		comp[v] = v
	}
	chosen := map[int]bool{}
	maxPhases := int(math.Ceil(math.Log2(float64(n+2)))) + 2

	res := &Result{}
	for phase := 0; phase < maxPhases; phase++ {
		// Step 1: all-to-all broadcast of component labels.
		labels := make([]int64, n)
		for v := range labels {
			labels[v] = int64(comp[v])
		}
		if _, err := cc.BroadcastAll(n, labels, led, "mst-labels"); err != nil {
			return nil, err
		}
		// Lightest outgoing edge per node (internal).
		type cand struct {
			id int
			ok bool
		}
		cands := make([]cand, n)
		for v := 0; v < n; v++ {
			best, bestOK := -1, false
			for _, h := range g.Adj(v) {
				if comp[h.To] == comp[v] {
					continue
				}
				if !bestOK || lighter(g, h.Edge, best) {
					best, bestOK = h.Edge, true
				}
			}
			cands[v] = cand{id: best, ok: bestOK}
		}
		// Step 2: route candidates to the component leader (= the smallest
		// vertex of the component, computable from the broadcast labels).
		var pkts []cc.Packet
		for v := 0; v < n; v++ {
			if cands[v].ok {
				pkts = append(pkts, cc.Packet{Src: v, Dst: comp[v], Data: []int64{int64(cands[v].id)}})
			}
		}
		delivered, _, err := cc.RouteBatched(n, pkts, led, "mst-candidates")
		if err != nil {
			return nil, err
		}
		// Leaders select per-component minima.
		merge := map[int]int{} // component -> chosen edge id
		for leader, inbox := range delivered {
			if comp[leader] != leader {
				continue
			}
			best, bestOK := -1, false
			for _, p := range inbox {
				id := int(p.Data[0])
				if !bestOK || lighter(g, id, best) {
					best, bestOK = id, true
				}
			}
			if bestOK {
				merge[leader] = best
			}
		}
		if len(merge) == 0 {
			break
		}
		// Step 3: leaders announce the merge edges; one broadcast round
		// (each leader announces one word; all nodes then share the merge
		// set and contract internally).
		if led != nil {
			led.Add("mst-merge-bcast", rounds.Measured, 1, "leader merge announcements, 1 round")
		}
		for _, id := range merge {
			if !chosen[id] {
				chosen[id] = true
				res.EdgeIDs = append(res.EdgeIDs, id)
				res.Weight += g.Edge(id).W
			}
		}
		// Contract: union the endpoints, then relabel every vertex to the
		// minimum vertex of its merged component (internal).
		uf := newUnionFind(n)
		for v := 0; v < n; v++ {
			uf.union(v, comp[v])
		}
		for id := range chosen {
			e := g.Edge(id)
			uf.union(e.U, e.V)
		}
		root := make(map[int]int)
		for v := 0; v < n; v++ {
			r := uf.find(v)
			if cur, ok := root[r]; !ok || v < cur {
				root[r] = v
			}
		}
		for v := 0; v < n; v++ {
			comp[v] = root[uf.find(v)]
		}
		res.Phases++
	}
	sort.Ints(res.EdgeIDs)
	if err := validateForest(g, res.EdgeIDs); err != nil {
		return nil, err
	}
	return res, nil
}

// lighter reports whether edge a is lighter than edge b under the
// deterministic (weight, id) order.
func lighter(g *graph.Graph, a, b int) bool {
	ea, eb := g.Edge(a), g.Edge(b)
	if ea.W != eb.W {
		return ea.W < eb.W
	}
	return a < b
}

// validateForest checks acyclicity via union-find.
func validateForest(g *graph.Graph, ids []int) error {
	uf := newUnionFind(g.N())
	for _, id := range ids {
		e := g.Edge(id)
		if !uf.union(e.U, e.V) {
			return fmt.Errorf("mst: internal: edge %d closes a cycle", id)
		}
	}
	return nil
}

// LotkerRounds is the [LPSPP05] round bound O(log log n), the charged cost
// of the founding congested-clique algorithm (we instantiate the constant
// at 3, covering its three-stage phases).
func LotkerRounds(n int) int64 {
	if n < 4 {
		return 1
	}
	return int64(math.Ceil(3 * math.Log2(math.Log2(float64(n)))))
}

// CiteLotker is the citation string for LotkerRounds charges.
const CiteLotker = "LPSPP05 MST, O(log log n) rounds"
