// Command lapccnode is one worker process of a multi-process congested
// clique. It is not run by hand: the TCP transport coordinator (an engine
// configured with -transport tcp, or the net-smoke harness) execs one
// lapccnode per worker, hands it the coordinator address, and the process
// serves delivery barriers until it is shut down.
package main

import (
	"flag"
	"fmt"
	"os"

	"lapcc/internal/transport/tcp"
)

func main() {
	coord := flag.String("coord", "", "coordinator address (host:port)")
	id := flag.Int("id", -1, "worker id in [0, procs)")
	procs := flag.Int("procs", 0, "total worker count")
	flag.Parse()

	if *coord == "" || *id < 0 || *procs <= 0 || *id >= *procs {
		fmt.Fprintln(os.Stderr, "lapccnode: -coord, -id, and -procs are required (0 <= id < procs)")
		os.Exit(2)
	}
	if err := tcp.RunNode(*coord, *id, *procs); err != nil {
		fmt.Fprintf(os.Stderr, "lapccnode: %v\n", err)
		os.Exit(1)
	}
}
