package main

import "math/rand"

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
