// Command experiments regenerates every experiment table in EXPERIMENTS.md
// (E1-E10), reproducing the quantitative claims of the paper's theorems as
// scaling measurements plus the simulator's own instrumentation profile
// (E10). See DESIGN.md section 5 for the experiment index.
//
//	go run ./cmd/experiments            # all experiments
//	go run ./cmd/experiments -run E3,E5 # a subset
//	go run ./cmd/experiments -quick     # smaller sweeps
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lapcc/internal/experiments"
)

func main() {
	runFlag := flag.String("run", "all", "comma-separated experiment ids (E1..E10) or 'all'")
	quick := flag.Bool("quick", false, "smaller parameter sweeps")
	flag.Parse()

	want := map[string]bool{}
	if *runFlag == "all" {
		for _, e := range experiments.All() {
			want[e.ID] = true
		}
	} else {
		for _, id := range strings.Split(*runFlag, ",") {
			want[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}
	for _, e := range experiments.All() {
		if !want[e.ID] {
			continue
		}
		fmt.Printf("\n================================================================\n%s\n================================================================\n", e.Title)
		if err := e.Run(os.Stdout, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
	}
}
