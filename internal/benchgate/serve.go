package benchgate

import (
	"fmt"
	"net/http/httptest"

	"lapcc/internal/serve"
)

// ServeTolerance gates the serve suite. The gated figure is the whole-run
// ns-per-request (inverse throughput): per-op latency percentiles under
// concurrency are dominated by queueing noise — which request lands behind
// which solve — and swing several-fold between identical runs on a busy
// host, so they are recorded as informational headline data instead of
// gated. Even the aggregate stacks scheduler and loopback noise on the
// solver's own jitter, hence a ratio wider than the microbenchmark
// default. The serve figures carry no B/op or allocs/op.
var ServeTolerance = Tolerance{Ns: 3.0}

// MeasureServeWorkload re-measures BENCH_serve.json in-process: it mounts
// the daemon handler on an httptest server and replays the deterministic
// loadgen mix (the same workload `make serve-smoke` drives through a real
// lapccd process), returning per-op p50/p99 latencies and the run's
// ns-per-request as benchmark-shaped metrics.
func MeasureServeWorkload() (map[string]Metrics, error) {
	s := serve.New(serve.Options{MaxInflight: 32})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	res, err := serve.RunLoad(serve.LoadOptions{
		BaseURL: ts.URL, Requests: 60, Concurrency: 4, Topologies: 2, N: 48, Seed: 1,
	})
	if err != nil {
		return nil, err
	}
	if res.Errors > 0 {
		return nil, fmt.Errorf("benchgate: %d/%d serve requests failed", res.Errors, res.Requests)
	}
	return map[string]Metrics{"Serve/throughput": {NsPerOp: res.NsPerRequest}}, nil
}
