// Package euler implements the deterministic Eulerian-orientation algorithm
// of Theorem 1.4: given a graph in which every vertex has even degree,
// orient every edge so that each vertex has equal in- and out-degree, in
// O(log n log* n) congested-clique rounds.
//
// # Algorithm
//
// Following the paper, each vertex internally pairs its incident edges,
// which induces an implicit decomposition of the edge set into closed walks.
// The simulation works on *directed states*: state 2e+1 represents the
// traversal of edge e from e.U into e.V (owned by clique node e.V), state
// 2e+0 the reverse (owned by e.U). The pairing defines a successor
// permutation on the 2m states whose orbits are directed cycles; every
// undirected closed walk appears as two mirror-image directed cycles, and
// the two are always distinct (a directed cycle containing both states of
// one edge would force an edge to be paired with itself).
//
// Each iteration 3-colors the current rings with Cole-Vishkin (O(log* n)
// rounds, package ccalgo), derives a maximal matching, marks the higher-id
// endpoint of every matched pair (so at most half the states survive and at
// most 3 consecutive states are unmarked), and contracts unmarked runs by
// relaying probes over at most 4 hops of batched Lenzen routing. After
// O(log n) iterations every ring is a single state — the leader, which
// knows the accumulated traversal cost of its directed cycle. Orientation
// decisions flow back down the contraction tree, and a final per-edge
// exchange between the two mirror states resolves, for every edge
// consistently, which of the two directed cycles' traversal directions to
// adopt.
//
// # Costs
//
// The optional per-edge signed cost steers the choice between the two
// traversal directions: orienting edge e as U->V contributes +dirCost[e],
// as V->U contributes -dirCost[e], and the chosen orientation makes every
// cycle's total contribution non-positive. This is exactly the guarantee
// Cohen's flow rounding (Lemma 4.2) needs; passing nil costs yields a plain
// Eulerian orientation.
package euler

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"lapcc/internal/cc"
	"lapcc/internal/ccalgo"
	"lapcc/internal/graph"
	"lapcc/internal/metrics"
	"lapcc/internal/rounds"
	"lapcc/internal/trace"
)

// ErrNotEulerian reports a vertex of odd degree.
var ErrNotEulerian = errors.New("euler: graph has a vertex of odd degree")

// maxProbeHops bounds the relay length during deterministic contraction:
// runs of unmarked states have length at most 3, so a probe reaches the
// next marked state in at most 4 hops.
const maxProbeHops = 4

// Mode selects the marking strategy of step 2a.
type Mode int

// Marking modes.
const (
	// Deterministic marks via Cole-Vishkin maximal matching: O(log* n)
	// rounds per iteration, unmarked runs of length at most 3 (the
	// Theorem 1.4 algorithm).
	Deterministic Mode = iota + 1
	// Randomized marks each state independently with probability 1/2 (the
	// paper's remark after Theorem 1.4): no coloring rounds, but unmarked
	// runs are only O(log n) with high probability, so probes relay
	// further; probes that exceed the cap simply leave their ring segment
	// uncontracted for one iteration.
	Randomized
)

// Options configures Orient.
type Options struct {
	// Mode defaults to Deterministic.
	Mode Mode
	// Seed drives the Randomized mode's marking.
	Seed int64
	// Ledger, if non-nil, records the round costs of the run.
	Ledger *rounds.Ledger
	// Trace, if non-nil, receives hierarchical span and cost events for
	// this call (see internal/trace); a nil tracer records nothing and
	// costs nothing.
	Trace *trace.Tracer
	// Faults, if non-nil, routes every network primitive of the run —
	// probes, replies, expansion, mirror exchange, and the Cole-Vishkin
	// exchanges inside the ring matching — through the reliable
	// retransmission layer under the given fault plan. The orientation is
	// bit-identical to a fault-free run; only the round cost grows.
	Faults *cc.FaultPlan
	// Transport, if non-nil, physically carries every routing step of the
	// run through the given delivery backend (see cc.Transport); nil keeps
	// the in-process path. The orientation is bit-identical either way.
	Transport cc.Transport
	// Budget, if non-nil, is checked at every contraction iteration;
	// exhaustion aborts with an error unwrapping to
	// rounds.ErrBudgetExceeded.
	Budget *rounds.Budget
	// Metrics, if non-nil, receives live counters (orientations,
	// contraction iterations, dead probes) and a mirror of the ledger's
	// cost stream. A nil registry records nothing and costs nothing.
	Metrics *metrics.Registry
}

// Stats reports the execution of one orientation.
type Stats struct {
	// Stats carries the shared round accounting of the call.
	rounds.Stats
	// Iterations is the number of contraction iterations (O(log n)).
	Iterations int
	// States is the number of directed states (2m).
	States int
	// DeadProbes counts randomized-mode probes that exceeded the hop cap
	// (their ring segments retried in a later iteration).
	DeadProbes int
}

// Orient computes an Eulerian orientation of g with the Theorem 1.4
// algorithm (deterministic unless opts.Mode says otherwise). The returned
// slice has one entry per edge: true means the edge is oriented from
// Edge.U to Edge.V. dirCost, if non-nil, must have one signed cost per
// edge (see the package comment); every implicit cycle's chosen direction
// then has non-positive total cost. Rounds are recorded in opts.Ledger
// (which may be nil).
func Orient(g *graph.Graph, dirCost []int64, opts Options) ([]bool, Stats, error) {
	opts.Metrics.MirrorLedger(opts.Ledger)
	snap := rounds.Snap(opts.Ledger)
	spansBefore := opts.Trace.SpanCount()
	orient, stats, err := orientImpl(g, dirCost, opts)
	stats.Stats = snap.Stats()
	stats.Spans = opts.Trace.SpanCount() - spansBefore
	if reg := opts.Metrics; reg != nil && err == nil {
		reg.Counter("lapcc_euler_orientations_total", "Eulerian orientations computed.").Inc()
		reg.Counter("lapcc_euler_iterations_total", "Ring-contraction iterations.").Add(int64(stats.Iterations))
		reg.Counter("lapcc_euler_dead_probes_total", "Randomized-mode probes past the hop cap.").Add(int64(stats.DeadProbes))
	}
	return orient, stats, err
}

func orientImpl(g *graph.Graph, dirCost []int64, opts Options) ([]bool, Stats, error) {
	if !g.IsEulerian() {
		return nil, Stats{}, ErrNotEulerian
	}
	if dirCost != nil && len(dirCost) != g.M() {
		return nil, Stats{}, fmt.Errorf("euler: %d costs for %d edges", len(dirCost), g.M())
	}
	m := g.M()
	if m == 0 {
		return nil, Stats{}, nil
	}
	n := g.N()
	if opts.Mode == 0 {
		opts.Mode = Deterministic
	}
	led, tr := opts.Ledger, opts.Trace
	tr.Attach(led)
	sp := tr.Start("euler-orient")
	defer sp.End()
	s := newStateSet(g, dirCost, opts)

	// Contraction loop: reduce every ring to a single leader state. The
	// randomized mode gets a larger iteration allowance: markings can
	// occasionally fail to shrink a ring (no marks, or a dead probe).
	maxIter := 2*int(math.Ceil(math.Log2(float64(2*m+2)))) + 4
	if opts.Mode == Randomized {
		maxIter = 8*int(math.Ceil(math.Log2(float64(2*m+2)))) + 40
	}
	opts.Budget.BindIfUnbound(led)
	iter := 0
	for s.anyProperRing() {
		if err := opts.Budget.Check(fmt.Sprintf("euler-contract-%d", iter)); err != nil {
			return nil, Stats{}, fmt.Errorf("euler: %w", err)
		}
		if iter >= maxIter {
			return nil, Stats{}, fmt.Errorf("euler: contraction did not finish in %d iterations", maxIter)
		}
		isp := tr.Startf("contract-%d", iter)
		err := s.contractOnce(n, led, iter)
		isp.End()
		if err != nil {
			return nil, Stats{}, err
		}
		iter++
	}

	// Leaders decide; decisions flow back down the contraction tree.
	s.decideAtLeaders()
	esp := tr.Start("expand")
	err := s.expand(n, led)
	esp.End()
	if err != nil {
		return nil, Stats{}, err
	}

	msp := tr.Start("mirror")
	orient, err := s.resolveOrientations(n, led)
	msp.End()
	if err != nil {
		return nil, Stats{}, err
	}
	return orient, Stats{Iterations: iter, States: 2 * m, DeadProbes: s.deadProbes}, nil
}

// stateSet is the driver-side bookkeeping for the 2m directed states.
type stateSet struct {
	g     *graph.Graph
	owner []int
	succ  []int
	pred  []int
	alive []bool
	cost  []int64 // cost of the virtual edge state -> succ(state)

	// Orientation decision, filled during the expansion phase.
	leaderID []int64
	want     []bool
	known    []bool

	mode       Mode
	rng        *rand.Rand
	deadProbes int
	faults     *cc.FaultPlan
	transport  cc.Transport

	// expansion[k] holds the contraction records of iteration k.
	expansion [][]contractionRecord
}

// route delivers one batched routing step, through the reliable
// retransmission layer when a fault plan is installed and over the
// configured delivery backend when one is.
func (s *stateSet) route(n int, pkts []cc.Packet, led *rounds.Ledger, tag string) ([][]cc.Packet, error) {
	if s.faults != nil {
		out, _, err := cc.ReliableRouteBatchedVia(s.transport, n, pkts, led, tag, s.faults)
		return out, err
	}
	out, _, err := cc.RouteBatchedVia(s.transport, n, pkts, led, tag)
	return out, err
}

// contractionRecord remembers one contracted run: informer stayed alive and
// must later forward the cycle decision to the removed chain members.
type contractionRecord struct {
	informer int
	members  []chainEntry
}

type chainEntry struct {
	state int
	owner int
}

func newStateSet(g *graph.Graph, dirCost []int64, opts Options) *stateSet {
	m := g.M()
	s := &stateSet{
		mode:      opts.Mode,
		rng:       rand.New(rand.NewSource(opts.Seed)),
		faults:    opts.Faults,
		transport: opts.Transport,
		g:         g,
		owner:     make([]int, 2*m),
		succ:      make([]int, 2*m),
		pred:      make([]int, 2*m),
		alive:     make([]bool, 2*m),
		cost:      make([]int64, 2*m),
		leaderID:  make([]int64, 2*m),
		want:      make([]bool, 2*m),
		known:     make([]bool, 2*m),
	}
	// Pair incident edges at every vertex by adjacency position: this is the
	// internal, zero-round step 1 of Theorem 1.4.
	partner := make([]map[int]int, g.N())
	for v := 0; v < g.N(); v++ {
		adj := g.Adj(v)
		partner[v] = make(map[int]int, len(adj))
		for k := 0; k+1 < len(adj); k += 2 {
			a, b := adj[k].Edge, adj[k+1].Edge
			partner[v][a] = b
			partner[v][b] = a
		}
	}
	stateOf := func(edge, enteredVertex int) int {
		if g.Edge(edge).V == enteredVertex {
			return 2*edge + 1
		}
		return 2 * edge
	}
	for st := 0; st < 2*m; st++ {
		e := st / 2
		var v int // the vertex this state enters
		if st%2 == 1 {
			v = g.Edge(e).V
		} else {
			v = g.Edge(e).U
		}
		s.owner[st] = v
		s.alive[st] = true
		exit := partner[v][e]
		w := g.Edge(exit).U
		if w == v {
			w = g.Edge(exit).V
		}
		s.succ[st] = stateOf(exit, w)
		// Hop cost: traversing edge `exit` from v to w.
		if dirCost != nil {
			if v == g.Edge(exit).U {
				s.cost[st] = dirCost[exit]
			} else {
				s.cost[st] = -dirCost[exit]
			}
		}
	}
	for st := range s.succ {
		s.pred[s.succ[st]] = st
	}
	return s
}

func (s *stateSet) anyProperRing() bool {
	for st, a := range s.alive {
		if a && s.succ[st] != st {
			return true
		}
	}
	return false
}

// contractOnce performs one marking + contraction iteration.
func (s *stateSet) contractOnce(n int, led *rounds.Ledger, level int) error {
	marked := make([]bool, len(s.alive))
	switch s.mode {
	case Randomized:
		// Paper remark after Theorem 1.4: sample each state with constant
		// probability — no symmetry-breaking rounds at all.
		for st, a := range s.alive {
			if a && s.succ[st] != st && s.rng.Intn(2) == 1 {
				marked[st] = true
			}
		}
	default:
		rings := &ccalgo.Rings{CliqueN: n, Owner: s.owner, Succ: s.succ, Pred: s.pred, Alive: s.alive, Faults: s.faults, Transport: s.transport}
		matchSucc, err := rings.MaximalMatching(led)
		if err != nil {
			return fmt.Errorf("euler: iteration %d: %w", level, err)
		}
		for st, m := range matchSucc {
			if !m {
				continue
			}
			hi := st
			if s.succ[st] > hi {
				hi = s.succ[st]
			}
			marked[hi] = true
		}
	}
	// Self-rings stay as they are; their (sole) state counts as marked so
	// probes from other rings can never involve them.
	for st, a := range s.alive {
		if a && s.succ[st] == st {
			marked[st] = true
		}
	}

	// Probe relay: each marked state on a proper ring launches a probe along
	// succ pointers; unmarked states forward it, appending themselves; the
	// next marked state terminates it and replies to the originator.
	//
	// Probe payload layout:
	//   [0] recipient state (resolved by the receiving clique node)
	//   [1] originator state, [2] originator owner
	//   [3] accumulated cost
	//   [4] chain length L, followed by L (state, owner) pairs
	type probe struct {
		at     int // state currently holding the probe
		origin int
		cost   int64
		chain  []chainEntry
	}
	var probes []probe
	for st, a := range s.alive {
		if a && marked[st] && s.succ[st] != st {
			probes = append(probes, probe{at: st, origin: st, cost: s.cost[st]})
		}
	}
	type arrival struct {
		origin int
		target int
		cost   int64
		chain  []chainEntry
	}
	hopCap := maxProbeHops
	if s.mode == Randomized {
		// Unmarked runs are geometric, so O(log m) hops suffice with high
		// probability; longer runs just retry next iteration.
		hopCap = 2*int(math.Ceil(math.Log2(float64(len(s.alive)+2)))) + 8
	}
	var arrivals []arrival
	for hop := 0; hop < hopCap && len(probes) > 0; hop++ {
		pkts := make([]cc.Packet, 0, len(probes))
		for _, p := range probes {
			next := s.succ[p.at]
			data := []int64{int64(next), int64(p.origin), int64(s.owner[p.origin]), p.cost, int64(len(p.chain))}
			for _, ce := range p.chain {
				data = append(data, int64(ce.state), int64(ce.owner))
			}
			pkts = append(pkts, cc.Packet{Src: s.owner[p.at], Dst: s.owner[next], Data: data})
		}
		delivered, err := s.route(n, pkts, led, "euler-probe")
		if err != nil {
			return fmt.Errorf("euler: probe relay: %w", err)
		}
		probes = probes[:0]
		for _, inbox := range delivered {
			for _, pk := range inbox {
				target := int(pk.Data[0])
				origin := int(pk.Data[1])
				cost := pk.Data[3]
				l := int(pk.Data[4])
				chain := make([]chainEntry, 0, l)
				for i := 0; i < l; i++ {
					chain = append(chain, chainEntry{state: int(pk.Data[5+2*i]), owner: int(pk.Data[6+2*i])})
				}
				if marked[target] {
					arrivals = append(arrivals, arrival{origin: origin, target: target, cost: cost, chain: chain})
					continue
				}
				chain = append(chain, chainEntry{state: target, owner: s.owner[target]})
				probes = append(probes, probe{at: target, origin: origin, cost: cost + s.cost[target], chain: chain})
			}
		}
	}
	if len(probes) > 0 {
		if s.mode == Randomized {
			// Dropped probes leave their ring segments uncontracted; the
			// next iteration's fresh marking retries them.
			s.deadProbes += len(probes)
		} else {
			return fmt.Errorf("euler: %d probes unresolved after %d hops (unmarked run too long)", len(probes), hopCap)
		}
	}

	// Reply round: terminating states answer the originators. (A single
	// routed message per probe; the contraction data it carries is what the
	// originator needs to rewire its ring pointer.)
	replyPkts := make([]cc.Packet, 0, len(arrivals))
	for _, a := range arrivals {
		data := []int64{int64(a.origin), int64(a.target), a.cost, int64(len(a.chain))}
		for _, ce := range a.chain {
			data = append(data, int64(ce.state), int64(ce.owner))
		}
		replyPkts = append(replyPkts, cc.Packet{Src: s.owner[a.target], Dst: s.owner[a.origin], Data: data})
	}
	if _, err := s.route(n, replyPkts, led, "euler-reply"); err != nil {
		return fmt.Errorf("euler: probe reply: %w", err)
	}

	// Apply the rewiring (each originator acts on its reply).
	var records []contractionRecord
	for _, a := range arrivals {
		s.succ[a.origin] = a.target
		s.pred[a.target] = a.origin
		s.cost[a.origin] = a.cost
		for _, ce := range a.chain {
			s.alive[ce.state] = false
		}
		if len(a.chain) > 0 {
			records = append(records, contractionRecord{informer: a.origin, members: a.chain})
		}
	}
	s.expansion = append(s.expansion, records)
	return nil
}

// decideAtLeaders sets the orientation decision at every leader (self-ring).
func (s *stateSet) decideAtLeaders() {
	for st, a := range s.alive {
		if !a {
			continue
		}
		s.leaderID[st] = int64(st)
		s.want[st] = s.cost[st] <= 0
		s.known[st] = true
	}
}

// expand pushes (leaderID, want) back down the contraction tree, one routed
// batch per contraction level, in reverse order.
func (s *stateSet) expand(n int, led *rounds.Ledger) error {
	for level := len(s.expansion) - 1; level >= 0; level-- {
		var pkts []cc.Packet
		for _, rec := range s.expansion[level] {
			if !s.known[rec.informer] {
				return fmt.Errorf("euler: informer %d lacks decision at level %d", rec.informer, level)
			}
			w := int64(0)
			if s.want[rec.informer] {
				w = 1
			}
			for _, ce := range rec.members {
				pkts = append(pkts, cc.Packet{
					Src:  s.owner[rec.informer],
					Dst:  ce.owner,
					Data: []int64{int64(ce.state), s.leaderID[rec.informer], w},
				})
			}
		}
		delivered, err := s.route(n, pkts, led, "euler-expand")
		if err != nil {
			return fmt.Errorf("euler: expansion level %d: %w", level, err)
		}
		for _, inbox := range delivered {
			for _, pk := range inbox {
				st := int(pk.Data[0])
				s.leaderID[st] = pk.Data[1]
				s.want[st] = pk.Data[2] == 1
				s.known[st] = true
			}
		}
	}
	return nil
}

// resolveOrientations performs the final mirror exchange: for each edge the
// two directed states swap (leaderID, want) and both endpoints apply the
// same deterministic rule, yielding a consistent orientation per cycle.
func (s *stateSet) resolveOrientations(n int, led *rounds.Ledger) ([]bool, error) {
	m := s.g.M()
	pkts := make([]cc.Packet, 0, 2*m)
	for st := 0; st < 2*m; st++ {
		if !s.known[st] {
			return nil, fmt.Errorf("euler: state %d never received a decision", st)
		}
		mirror := st ^ 1
		w := int64(0)
		if s.want[st] {
			w = 1
		}
		pkts = append(pkts, cc.Packet{
			Src:  s.owner[st],
			Dst:  s.owner[mirror],
			Data: []int64{int64(mirror), s.leaderID[st], w},
		})
	}
	if _, err := s.route(n, pkts, led, "euler-mirror"); err != nil {
		return nil, fmt.Errorf("euler: mirror exchange: %w", err)
	}
	// Both endpoints now hold both tuples; the driver computes the shared
	// deterministic rule once per edge.
	orient := make([]bool, m)
	for e := 0; e < m; e++ {
		l0, w0 := s.leaderID[2*e], s.want[2*e]     // direction V -> U
		l1, w1 := s.leaderID[2*e+1], s.want[2*e+1] // direction U -> V
		var winnerIsForward bool
		switch {
		case w1 && !w0:
			winnerIsForward = true
		case w0 && !w1:
			winnerIsForward = false
		default:
			winnerIsForward = l1 > l0
		}
		orient[e] = winnerIsForward
	}
	return orient, nil
}

// CheckOrientation verifies that orient is an Eulerian orientation of g:
// every vertex has equal in- and out-degree. It returns the first violating
// vertex, or -1.
func CheckOrientation(g *graph.Graph, orient []bool) int {
	balance := make([]int, g.N())
	for i, e := range g.Edges() {
		if orient[i] {
			balance[e.U]++
			balance[e.V]--
		} else {
			balance[e.U]--
			balance[e.V]++
		}
	}
	for v, b := range balance {
		if b != 0 {
			return v
		}
	}
	return -1
}
