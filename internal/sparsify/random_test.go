package sparsify

import (
	"testing"

	"lapcc/internal/graph"
	"lapcc/internal/rounds"
)

func TestRandomizedSparsifyQuality(t *testing.T) {
	g := graph.Complete(96)
	led := rounds.New()
	res, err := RandomizedSparsify(g, RandomOptions{Seed: 1, Ledger: led})
	if err != nil {
		t.Fatal(err)
	}
	if !res.H.IsConnected() {
		t.Fatal("randomized sparsifier disconnected")
	}
	if res.H.M() >= g.M() {
		t.Fatalf("no shrinkage: %d >= %d", res.H.M(), g.M())
	}
	alpha, err := MeasureAlpha(g, res.H, 200)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("K96: m=%d -> %d edges, alpha=%.2f", g.M(), res.H.M(), alpha)
	if alpha > 10 {
		t.Fatalf("alpha = %v too large for eps=0.5 sampling on a clique", alpha)
	}
	if led.TotalOf(rounds.Charged) != RandomizedSparsifyRounds(96) {
		t.Fatalf("charged %d rounds, want %d", led.TotalOf(rounds.Charged), RandomizedSparsifyRounds(96))
	}
}

func TestRandomizedSparsifyWeighted(t *testing.T) {
	base, err := graph.RandomRegular(64, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.WithRandomWeights(base, 50, 6)
	res, err := RandomizedSparsify(g, RandomOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	alpha, err := MeasureAlpha(g, res.H, 200)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("weighted regular: alpha=%.2f edges=%d", alpha, res.H.M())
	if alpha > 20 {
		t.Fatalf("alpha = %v too large", alpha)
	}
}

func TestRandomizedSparsifyReproduciblePerSeed(t *testing.T) {
	g := graph.Complete(32)
	a, err := RandomizedSparsify(g, RandomOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomizedSparsify(g, RandomOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.H.M() != b.H.M() {
		t.Fatalf("same seed gave %d vs %d edges", a.H.M(), b.H.M())
	}
}

func TestRandomizedSparsifyRejectsBadInput(t *testing.T) {
	if _, err := RandomizedSparsify(graph.New(3), RandomOptions{}); err == nil {
		t.Fatal("empty graph accepted")
	}
	g := graph.New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(2, 3, 1)
	if _, err := RandomizedSparsify(g, RandomOptions{}); err == nil {
		t.Fatal("disconnected graph accepted")
	}
}

func TestRandomizedVsDeterministicRounds(t *testing.T) {
	// The point of the remark: the randomized construction is charged
	// polylog rounds, below the deterministic chain's cost at scale.
	g, err := graph.RandomRegular(256, 8, 11)
	if err != nil {
		t.Fatal(err)
	}
	detLed := rounds.New()
	if _, err := Sparsify(g, Options{Ledger: detLed}); err != nil {
		t.Fatal(err)
	}
	randLed := rounds.New()
	if _, err := RandomizedSparsify(g, RandomOptions{Seed: 3, Ledger: randLed}); err != nil {
		t.Fatal(err)
	}
	t.Logf("rounds: deterministic=%d randomized=%d", detLed.Total(), randLed.Total())
	if randLed.Total() <= 0 {
		t.Fatal("randomized rounds not recorded")
	}
}
