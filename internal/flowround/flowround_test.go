package flowround

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"lapcc/internal/graph"
	"lapcc/internal/rounds"
)

// pathFlowInstance builds a directed graph that is a union of s-t paths and
// a fractional flow assembled from delta-multiples pushed along random
// paths. Conservation holds by construction.
func pathFlowInstance(n, paths int, delta float64, seed int64) (*graph.DiGraph, []float64, int, int) {
	rng := rand.New(rand.NewSource(seed))
	dg := graph.NewDi(n)
	s, t := 0, n-1
	f := []float64{}
	for p := 0; p < paths; p++ {
		// Random increasing path s -> ... -> t.
		cur := s
		var arcIDs []int
		for cur != t {
			next := cur + 1 + rng.Intn(n-cur-1)
			id := dg.MustAddArc(cur, next, 1<<20, int64(1+rng.Intn(9)))
			arcIDs = append(arcIDs, id)
			cur = next
		}
		amount := delta * float64(1+rng.Intn(int(1/delta)*2))
		for range arcIDs {
			f = append(f, amount)
		}
	}
	return dg, f, s, t
}

func flowValue(dg *graph.DiGraph, f []float64, s int) float64 {
	var v float64
	for _, ai := range dg.Out(s) {
		v += f[ai]
	}
	for _, ai := range dg.In(s) {
		v -= f[ai]
	}
	return v
}

func flowCost(dg *graph.DiGraph, f []float64) float64 {
	var c float64
	for i, a := range dg.Arcs() {
		c += float64(a.Cost) * f[i]
	}
	return c
}

func TestRoundValidation(t *testing.T) {
	dg := graph.NewDi(3)
	dg.MustAddArc(0, 1, 5, 1)
	dg.MustAddArc(1, 2, 5, 1)
	if _, err := Round(dg, []float64{0.5}, 0, 2, 0.5, false, nil); err == nil {
		t.Fatal("flow length mismatch should error")
	}
	if _, err := Round(dg, []float64{0.5, 0.5}, 0, 2, 0.3, false, nil); !errors.Is(err, ErrBadDelta) {
		t.Fatalf("bad delta error = %v", err)
	}
	if _, err := Round(dg, []float64{0.3, 0.3}, 0, 2, 0.5, false, nil); !errors.Is(err, ErrNotOnGrid) {
		t.Fatalf("off-grid error = %v", err)
	}
	if _, err := Round(dg, []float64{0.5, 0.0}, 0, 2, 0.5, false, nil); !errors.Is(err, ErrNotConserved) {
		t.Fatalf("conservation error = %v", err)
	}
}

func TestRoundSinglePath(t *testing.T) {
	dg := graph.NewDi(3)
	dg.MustAddArc(0, 1, 5, 1)
	dg.MustAddArc(1, 2, 5, 1)
	got, err := Round(dg, []float64{0.75, 0.75}, 0, 2, 0.25, false, rounds.New())
	if err != nil {
		t.Fatal(err)
	}
	// Value must not decrease: 0.75 fractional -> must round up to 1.
	if got[0] != 1 || got[1] != 1 {
		t.Fatalf("rounded flow = %v, want [1 1]", got)
	}
}

func TestRoundPreservesIntegralFlows(t *testing.T) {
	dg := graph.NewDi(3)
	dg.MustAddArc(0, 1, 5, 1)
	dg.MustAddArc(1, 2, 5, 1)
	got, err := Round(dg, []float64{2, 2}, 0, 2, 0.25, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 2 || got[1] != 2 {
		t.Fatalf("integral flow changed: %v", got)
	}
}

func TestRoundFloorCeilBracketAndGuarantees(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		delta := 1.0 / 16
		dg, f, s, tt := pathFlowInstance(12, 6, delta, seed)
		led := rounds.New()
		got, err := Round(dg, f, s, tt, delta, false, led)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i := range f {
			lo, hi := int64(math.Floor(f[i])), int64(math.Ceil(f[i]))
			if got[i] < lo || got[i] > hi {
				t.Fatalf("seed %d: arc %d rounded %v -> %d outside [%d,%d]", seed, i, f[i], got[i], lo, hi)
			}
		}
		if v := conservationViolator(dg, got, s, tt); v >= 0 {
			t.Fatalf("seed %d: conservation broken at %d", seed, v)
		}
		if float64(Value(dg, got, s)) < flowValue(dg, f, s)-1e-9 {
			t.Fatalf("seed %d: value dropped from %v to %d", seed, flowValue(dg, f, s), Value(dg, got, s))
		}
		if led.Total() == 0 {
			t.Fatalf("seed %d: no rounds recorded", seed)
		}
	}
}

func TestRoundCostAwareDoesNotIncreaseCost(t *testing.T) {
	// Integral total flow + costs: rounded cost must not exceed input cost.
	for seed := int64(20); seed < 28; seed++ {
		delta := 1.0 / 8
		rng := rand.New(rand.NewSource(seed))
		n := 10
		dg := graph.NewDi(n)
		s, tt := 0, n-1
		// Two parallel path bundles so fractional flow can shift between
		// cheap and expensive routes; total pushed per bundle pair is 1.
		var f []float64
		for b := 0; b < 3; b++ {
			frac := delta * float64(1+2*rng.Intn(3)) // odd multiple, < 1
			for _, amount := range []float64{frac, 1 - frac} {
				cur := s
				for cur != tt {
					next := cur + 1 + rng.Intn(n-cur-1)
					dg.MustAddArc(cur, next, 1<<20, int64(1+rng.Intn(9)))
					f = append(f, amount)
					cur = next
				}
			}
		}
		got, err := Round(dg, f, s, tt, delta, true, nil)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		inCost := flowCost(dg, f)
		outCost := float64(Cost(dg, got))
		if outCost > inCost+1e-6 {
			t.Fatalf("seed %d: cost rose from %v to %v", seed, inCost, outCost)
		}
		if float64(Value(dg, got, s)) < flowValue(dg, f, s)-1e-9 {
			t.Fatalf("seed %d: value dropped", seed)
		}
	}
}

func TestRoundRoundsScaleWithLogDelta(t *testing.T) {
	roundsFor := func(delta float64) int64 {
		dg, f, s, tt := pathFlowInstance(16, 8, delta, 99)
		led := rounds.New()
		if _, err := Round(dg, f, s, tt, delta, false, led); err != nil {
			t.Fatal(err)
		}
		return led.Total()
	}
	r4 := roundsFor(1.0 / 16)   // 4 levels
	r16 := roundsFor(1.0 / 256) // 8 levels... roughly 2x
	if r16 > 6*r4 {
		t.Fatalf("rounds grew from %d to %d; want ~log(1/delta) growth", r4, r16)
	}
}

func TestSnapToGridRepairsConservation(t *testing.T) {
	dg, f, s, tt := pathFlowInstance(10, 5, 1.0/16, 7)
	// Perturb the flow off-grid hard enough that snapping lands some arcs
	// on different grid points and the tree repair has real work to do.
	rng := rand.New(rand.NewSource(8))
	for i := range f {
		f[i] += (rng.Float64() - 0.3) * (1.0 / 16)
		if f[i] < 0 {
			f[i] = 0
		}
	}
	snapped, err := SnapToGrid(dg, f, s, tt, 1.0/16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Round(dg, snapped, s, tt, 1.0/16, false, nil); err != nil {
		t.Fatalf("snapped flow not roundable: %v", err)
	}
}

func TestValueAndCostHelpers(t *testing.T) {
	dg := graph.NewDi(3)
	dg.MustAddArc(0, 1, 5, 3)
	dg.MustAddArc(1, 2, 5, 4)
	dg.MustAddArc(2, 0, 5, 1) // back arc into s
	f := []int64{2, 2, 1}
	if got := Value(dg, f, 0); got != 1 {
		t.Fatalf("Value = %d, want 1", got)
	}
	if got := Cost(dg, f); got != 2*3+2*4+1 {
		t.Fatalf("Cost = %d, want 15", got)
	}
}

// Property: random path flows always round to in-bracket, conserving,
// value-preserving integer flows.
func TestRoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		delta := 1.0 / 32
		dg, flow, s, tt := pathFlowInstance(14, 5, delta, seed)
		got, err := Round(dg, flow, s, tt, delta, false, nil)
		if err != nil {
			return false
		}
		for i := range flow {
			if got[i] < int64(math.Floor(flow[i])) || got[i] > int64(math.Ceil(flow[i])) {
				return false
			}
		}
		if conservationViolator(dg, got, s, tt) >= 0 {
			return false
		}
		return float64(Value(dg, got, s)) >= flowValue(dg, flow, s)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
