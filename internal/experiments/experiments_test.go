package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestAllExperimentsHaveUniqueIDs(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("malformed experiment %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
	}
	if len(seen) != 16 {
		t.Fatalf("%d experiments, want 16", len(seen))
	}
}

// TestQuickRunsProduceTables executes every experiment in quick mode: each
// must succeed and emit its claim-shape line. This is the regression net
// that keeps EXPERIMENTS.md regenerable.
func TestQuickRunsProduceTables(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweeps are slow")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf, true); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			out := buf.String()
			if !strings.Contains(out, "claim shape") {
				t.Fatalf("%s output lacks the claim-shape note:\n%s", e.ID, out)
			}
			if len(strings.Split(out, "\n")) < 5 {
				t.Fatalf("%s output suspiciously short:\n%s", e.ID, out)
			}
		})
	}
}
