package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"lapcc/internal/core"
	"lapcc/internal/graph"
	"lapcc/internal/linalg"
)

// --- E15 ------------------------------------------------------------------

// e15Workers is the worker sweep of the parallel-numerics experiment,
// matching the recorded BENCH_scaling.json curve.
var e15Workers = []int{1, 2, 4, 8}

// e15Hash folds a vector's exact bit patterns into one word, the identity
// check the table reports: equal hashes across the sweep mean bit-identical
// results, the parallel runtime's contract.
func e15Hash(v linalg.Vec) uint64 {
	h := uint64(1469598103934665603)
	for _, x := range v {
		h ^= math.Float64bits(x)
		h *= 1099511628211
	}
	return h
}

// e15ParallelNumerics measures the parallel numerical core (DESIGN.md §11):
// the blocked Laplacian matvec and a full Jacobi-CG solve at 1/2/4/8
// workers on one instance, reporting wall clock per worker count alongside
// the bit-identity verdict, then the full Theorem 1.1 solver through the
// Workers knob with its round total — pinning that parallelism changes wall
// clock only, never answers or round accounting. The identity and rounds
// columns are wall-clock-insensitive and reproduce exactly on any host; the
// timing columns scale with real cores (on a single-core host every
// workers>1 row pays pure scheduling overhead, matching BENCH_scaling.json).
func e15ParallelNumerics(w io.Writer, quick bool) error {
	n, m := 20000, 80000
	reps := 20
	if quick {
		n, m = 6000, 24000
		reps = 5
	}
	g, err := graph.ConnectedGNM(n, m, 15)
	if err != nil {
		return err
	}
	src := linalg.NewVec(n)
	for i := range src {
		src[i] = math.Sin(float64(i) * 0.37)
	}
	rhs := linalg.NewVec(n)
	rhs[0], rhs[n-1] = 1, -1

	fmt.Fprintf(w, "-- blocked kernels, n=%d m=%d (%d reps, best wall clock) --\n", n, m, reps)
	fmt.Fprintf(w, "%8s %12s %12s %12s %10s\n", "workers", "apply", "dot", "cg", "identical")
	var refApply, refCG uint64
	for _, workers := range e15Workers {
		l := linalg.NewLaplacian(g)
		pool := linalg.SharedPool(workers)
		l.SetPool(pool)
		l.Refresh()
		dst := linalg.NewVec(n)

		bestApply := time.Duration(math.MaxInt64)
		for r := 0; r < reps; r++ {
			t0 := time.Now()
			l.Apply(dst, src)
			if d := time.Since(t0); d < bestApply {
				bestApply = d
			}
		}
		bestDot := time.Duration(math.MaxInt64)
		for r := 0; r < reps; r++ {
			t0 := time.Now()
			_ = pool.Dot(src, src)
			if d := time.Since(t0); d < bestDot {
				bestDot = d
			}
		}
		t0 := time.Now()
		x, _, err := linalg.SolveCG(l, rhs, linalg.CGOptions{
			Tol: 1e-8, Precond: l.Degrees().Clone(), ProjectMean: true, Pool: pool,
		})
		if err != nil {
			return fmt.Errorf("e15: cg at workers=%d: %w", workers, err)
		}
		cgTime := time.Since(t0)

		applyHash, cgHash := e15Hash(dst), e15Hash(x)
		if workers == 1 {
			refApply, refCG = applyHash, cgHash
		}
		ident := "yes"
		if applyHash != refApply || cgHash != refCG {
			ident = "NO — BUG"
		}
		fmt.Fprintf(w, "%8d %12s %12s %12s %10s\n",
			workers, bestApply.Round(time.Microsecond), bestDot.Round(time.Microsecond),
			cgTime.Round(time.Microsecond), ident)
	}

	sn := 96
	if quick {
		sn = 48
	}
	sg, err := graph.ConnectedGNM(sn, 4*sn, 16)
	if err != nil {
		return err
	}
	sb := linalg.NewVec(sn)
	sb[0], sb[sn-1] = 1, -1
	fmt.Fprintf(w, "\n-- full Theorem 1.1 solver through core.RunOptions.Workers, n=%d --\n", sn)
	fmt.Fprintf(w, "%8s %10s %8s %12s %10s\n", "workers", "rounds", "iters", "wall", "identical")
	var refX uint64
	var refRounds int64
	for _, workers := range e15Workers {
		t0 := time.Now()
		res, err := core.SolveLaplacianWith(sg.Clone(), sb, 1e-8, core.RunOptions{Workers: workers})
		if err != nil {
			return fmt.Errorf("e15: solver at workers=%d: %w", workers, err)
		}
		wall := time.Since(t0)
		h := e15Hash(res.X)
		if workers == 1 {
			refX, refRounds = h, res.Rounds.Total
		}
		ident := "yes"
		if h != refX || res.Rounds.Total != refRounds {
			ident = "NO — BUG"
		}
		fmt.Fprintf(w, "%8d %10d %8d %12s %10s\n",
			workers, res.Rounds.Total, res.Iterations, wall.Round(time.Millisecond), ident)
	}
	fmt.Fprintln(w, "\nclaim shape: identical=yes and constant rounds on every row — fixed block")
	fmt.Fprintln(w, "partitions and fixed-order tree reductions make results bit-identical at any")
	fmt.Fprintln(w, "worker count, and parallelism is internal computation — zero extra rounds.")
	return nil
}
