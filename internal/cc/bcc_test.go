package cc

import (
	"errors"
	"testing"
)

// TestBCCAllowsBroadcastPrograms: a sum computation where every node
// announces its value to all others is legal BCC and takes one round.
func TestBCCAllowsBroadcastPrograms(t *testing.T) {
	n := 6
	e := NewEngine(n)
	e.SetBroadcastOnly(true)
	sums := make([]int64, n)
	step := func(node, round int, inbox []Message, send func(int, ...int64)) bool {
		switch round {
		case 0:
			for v := 0; v < n; v++ {
				if v != node {
					send(v, int64(node+1)) // same word to everyone
				}
			}
			return false
		default:
			s := int64(node + 1)
			for _, m := range inbox {
				s += m.Data[0]
			}
			sums[node] = s
			return true
		}
	}
	used, err := e.Run(step, 5)
	if err != nil {
		t.Fatal(err)
	}
	if used != 1 {
		t.Fatalf("broadcast sum used %d rounds, want 1", used)
	}
	want := int64(n * (n + 1) / 2)
	for v := 0; v < n; v++ {
		if sums[v] != want {
			t.Fatalf("node %d computed %d, want %d", v, sums[v], want)
		}
	}
}

// TestBCCRejectsPointToPoint: the unicast pattern the congested clique
// allows — distinct messages to distinct peers — violates BCC. This is the
// §1.1 observation that Lenzen-routing-based algorithms (Eulerian
// orientation, flow rounding) have no direct BCC implementation.
func TestBCCRejectsPointToPoint(t *testing.T) {
	e := NewEngine(4)
	e.SetBroadcastOnly(true)
	step := func(node, round int, inbox []Message, send func(int, ...int64)) bool {
		if node == 0 && round == 0 {
			send(1, 10)
			send(2, 20) // different payload: not a broadcast
		}
		return true
	}
	if _, err := e.Run(step, 3); !errors.Is(err, ErrNotBroadcast) {
		t.Fatalf("error = %v, want ErrNotBroadcast", err)
	}
}

// TestBCCPartialBroadcastAllowed: sending the same word to a subset is
// fine (a node may stay silent toward some peers; the restriction is on
// message content, not fan-out).
func TestBCCPartialBroadcastAllowed(t *testing.T) {
	e := NewEngine(4)
	e.SetBroadcastOnly(true)
	step := func(node, round int, inbox []Message, send func(int, ...int64)) bool {
		if node == 0 && round == 0 {
			send(1, 7)
			send(3, 7)
		}
		return true
	}
	if _, err := e.Run(step, 3); err != nil {
		t.Fatal(err)
	}
}

// TestBCCOffByDefault: without the flag, distinct messages are legal.
func TestBCCOffByDefault(t *testing.T) {
	e := NewEngine(4)
	step := func(node, round int, inbox []Message, send func(int, ...int64)) bool {
		if node == 0 && round == 0 {
			send(1, 1)
			send(2, 2)
		}
		return true
	}
	if _, err := e.Run(step, 3); err != nil {
		t.Fatal(err)
	}
}
