package serve

import (
	"sync"

	"lapcc/internal/core"
	"lapcc/internal/graph"
	"lapcc/internal/rounds"
	"lapcc/internal/sparsify"
)

// poolEntry is one pooled preprocessing unit, keyed by the structural
// fingerprint of its topology. Solve entries carry a core.LaplacianSession,
// sparsify entries a sparsify.Chain plus its ledger. An entry's mutex
// serializes requests on the same topology (the underlying sessions are
// single-goroutine); requests on distinct topologies run concurrently.
type poolEntry struct {
	mu sync.Mutex

	fp    uint64
	guard *graph.Graph // topology pinned at build; detects fingerprint collisions

	sess  *core.LaplacianSession
	chain *sparsify.Chain
	led   *rounds.Ledger // the chain's ledger (sparsify entries only)

	builds int // lifetime (re)builds in this entry, pinned by the e2e tests
}

// built reports whether the entry holds a usable preprocessing for g: it
// has been constructed and g really is the pinned topology (the fingerprint
// is a 64-bit hash, so collisions are resolved structurally).
func (e *poolEntry) built(g *graph.Graph) bool {
	if e.guard == nil {
		return false
	}
	return e.guard.SameStructure(g)
}

// sessionPool is a small LRU of poolEntry keyed by graph fingerprint.
type sessionPool struct {
	mu      sync.Mutex
	cap     int
	tick    int64
	entries map[uint64]*poolEntry
	lastUse map[uint64]int64
}

func newSessionPool(capacity int) *sessionPool {
	return &sessionPool{
		cap:     capacity,
		entries: make(map[uint64]*poolEntry),
		lastUse: make(map[uint64]int64),
	}
}

// acquire returns the entry for fp, creating an empty one (and evicting the
// least-recently-used entry past capacity) on miss. The boolean reports
// whether the entry already existed. The caller locks the entry's own mutex
// before touching its sessions; a concurrently evicted entry stays valid
// for the holder, it just stops being findable.
func (p *sessionPool) acquire(fp uint64) (*poolEntry, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.tick++
	if e, ok := p.entries[fp]; ok {
		p.lastUse[fp] = p.tick
		return e, true
	}
	if len(p.entries) >= p.cap {
		var victim uint64
		oldest := int64(1<<63 - 1)
		for k, t := range p.lastUse {
			if t < oldest {
				oldest, victim = t, k
			}
		}
		delete(p.entries, victim)
		delete(p.lastUse, victim)
	}
	e := &poolEntry{fp: fp}
	p.entries[fp] = e
	p.lastUse[fp] = p.tick
	return e, false
}

// size returns the current entry count.
func (p *sessionPool) size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.entries)
}
