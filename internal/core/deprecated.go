// Deprecated facade shims. The facade historically exposed every algorithm
// three times — plain, Traced, and With — plus the matching session
// constructors. The With-style entry points (and the request-oriented
// Do(Request)) are now the single canonical surface; the shims below keep
// the old names compiling for one release and will then be removed. No
// internal call site uses them.
package core

import (
	"lapcc/internal/graph"
	"lapcc/internal/linalg"
	"lapcc/internal/trace"
)

// SolveLaplacian solves L_G x = b to relative precision eps.
//
// Deprecated: use SolveLaplacianWith (or Do with OpSolve).
func SolveLaplacian(g *graph.Graph, b linalg.Vec, eps float64) (*LaplacianResult, error) {
	return SolveLaplacianWith(g, b, eps, RunOptions{})
}

// SolveLaplacianTraced is SolveLaplacian recording spans into tr.
//
// Deprecated: use SolveLaplacianWith with RunOptions{Trace: tr}.
func SolveLaplacianTraced(g *graph.Graph, b linalg.Vec, eps float64, tr *trace.Tracer) (*LaplacianResult, error) {
	return SolveLaplacianWith(g, b, eps, RunOptions{Trace: tr})
}

// Sparsify computes the deterministic spectral sparsifier of Theorem 3.3.
//
// Deprecated: use SparsifyWith (or Do with OpSparsify).
func Sparsify(g *graph.Graph) (*SparsifyResult, error) {
	return SparsifyWith(g, RunOptions{})
}

// SparsifyTraced is Sparsify recording spans into tr.
//
// Deprecated: use SparsifyWith with RunOptions{Trace: tr}.
func SparsifyTraced(g *graph.Graph, tr *trace.Tracer) (*SparsifyResult, error) {
	return SparsifyWith(g, RunOptions{Trace: tr})
}

// EulerianOrient orients every edge of an even-degree graph.
//
// Deprecated: use EulerianOrientWith (or Do with OpOrient).
func EulerianOrient(g *graph.Graph) (*EulerianResult, error) {
	return EulerianOrientWith(g, RunOptions{})
}

// EulerianOrientTraced is EulerianOrient recording spans into tr.
//
// Deprecated: use EulerianOrientWith with RunOptions{Trace: tr}.
func EulerianOrientTraced(g *graph.Graph, tr *trace.Tracer) (*EulerianResult, error) {
	return EulerianOrientWith(g, RunOptions{Trace: tr})
}

// RoundFlow rounds a fractional s-t flow to an integral one.
//
// Deprecated: use RoundFlowWith with a RoundFlowRequest (or Do with
// OpRoundFlow).
func RoundFlow(dg *graph.DiGraph, f []float64, s, t int, delta float64, useCosts bool) (*RoundFlowResult, error) {
	return RoundFlowWith(RoundFlowRequest{Graph: dg, Flow: f, Source: s, Sink: t, Delta: delta, UseCosts: useCosts}, RunOptions{})
}

// RoundFlowTraced is RoundFlow recording spans into tr.
//
// Deprecated: use RoundFlowWith with RunOptions{Trace: tr}.
func RoundFlowTraced(dg *graph.DiGraph, f []float64, s, t int, delta float64, useCosts bool, tr *trace.Tracer) (*RoundFlowResult, error) {
	return RoundFlowWith(RoundFlowRequest{Graph: dg, Flow: f, Source: s, Sink: t, Delta: delta, UseCosts: useCosts}, RunOptions{Trace: tr})
}

// MaxFlow computes the exact maximum s-t flow.
//
// Deprecated: use MaxFlowWith (or Do with OpMaxFlow).
func MaxFlow(dg *graph.DiGraph, s, t int) (*MaxFlowResult, error) {
	return MaxFlowWith(dg, s, t, RunOptions{})
}

// MaxFlowTraced is MaxFlow recording spans into tr.
//
// Deprecated: use MaxFlowWith with RunOptions{Trace: tr}.
func MaxFlowTraced(dg *graph.DiGraph, s, t int, tr *trace.Tracer) (*MaxFlowResult, error) {
	return MaxFlowWith(dg, s, t, RunOptions{Trace: tr})
}

// MinCostFlow routes the demand vector sigma at exactly minimum cost.
//
// Deprecated: use MinCostFlowWith (or Do with OpMinCostFlow).
func MinCostFlow(dg *graph.DiGraph, sigma []int64) (*MinCostFlowResult, error) {
	return MinCostFlowWith(dg, sigma, RunOptions{})
}

// MinCostFlowTraced is MinCostFlow recording spans into tr.
//
// Deprecated: use MinCostFlowWith with RunOptions{Trace: tr}.
func MinCostFlowTraced(dg *graph.DiGraph, sigma []int64, tr *trace.Tracer) (*MinCostFlowResult, error) {
	return MinCostFlowWith(dg, sigma, RunOptions{Trace: tr})
}

// NewLaplacianSessionTraced is the historical traced session constructor.
//
// Deprecated: use NewLaplacianSession with SessionOptions{Run:
// RunOptions{Trace: tr}, Warm: true}.
func NewLaplacianSessionTraced(g *graph.Graph, tr *trace.Tracer) (*LaplacianSession, error) {
	return NewLaplacianSession(g, SessionOptions{Run: RunOptions{Trace: tr}, Warm: true})
}

// NewLaplacianSessionWith is the historical options-carrying session
// constructor (warm starting always on).
//
// Deprecated: use NewLaplacianSession with SessionOptions{Run: ro, Warm:
// true}.
func NewLaplacianSessionWith(g *graph.Graph, ro RunOptions) (*LaplacianSession, error) {
	return NewLaplacianSession(g, SessionOptions{Run: ro, Warm: true})
}
