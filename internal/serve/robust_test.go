package serve

// Robustness tests for the serving layer: per-request panic recovery (a
// handler bug costs one enveloped 500, not the daemon) and graceful drain
// (an http.Server.Shutdown completes every admitted request — the zero-5xx
// SIGTERM contract cmd/lapccd builds on).

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"lapcc/internal/graph"
	"lapcc/internal/metrics"
)

// TestPanicRecovery: a panicking handler yields a JSON error envelope with
// status 500, bumps the panic counters, and leaves the server fully
// serviceable for the next request.
func TestPanicRecovery(t *testing.T) {
	reg := metrics.NewRegistry()
	s := New(Options{Metrics: reg})
	boom := true
	s.failpoint = func(op string) {
		if boom {
			panic("injected failure in " + op)
		}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	g, err := graph.RandomRegular(16, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	body := solveBody(t, g)

	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var env errorEnvelope
	derr := json.NewDecoder(resp.Body).Decode(&env)
	resp.Body.Close()
	if derr != nil {
		t.Fatalf("decoding panic envelope: %v", derr)
	}
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
	if env.Error.Code != "internal" || !strings.Contains(env.Error.Message, "recovered panic") {
		t.Fatalf("envelope %+v: want internal / recovered panic", env.Error)
	}
	if got := s.Stats().Panics; got != 1 {
		t.Fatalf("panic counter %d, want 1", got)
	}
	if got := reg.Counter("lapcc_serve_errors_total", "", "code", "panic").Value(); got != 1 {
		t.Fatalf("panic metric %d, want 1", got)
	}
	if len(s.inflight) != 0 {
		t.Fatalf("panic leaked %d inflight slots", len(s.inflight))
	}

	// The daemon must still serve.
	boom = false
	resp, err = http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-panic status %d, want 200", resp.StatusCode)
	}
}

// TestGracefulDrainCompletesInflight: Shutdown stops accepting immediately
// but the admitted (held) request still completes with a 200 — no request
// that made it past admission is ever dropped by a drain.
func TestGracefulDrainCompletesInflight(t *testing.T) {
	s := New(Options{})
	s.hold = make(chan struct{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	url := "http://" + ln.Addr().String()

	g, err := graph.RandomRegular(16, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		code int
		err  error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Post(url+"/v1/solve", "application/json", bytes.NewReader(solveBody(t, g)))
		if err != nil {
			done <- result{0, err}
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		done <- result{resp.StatusCode, nil}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for len(s.inflight) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never acquired an inflight slot")
		}
		time.Sleep(time.Millisecond)
	}

	shut := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shut <- hs.Shutdown(ctx)
	}()

	// The listener closes as the drain starts: new connections are refused
	// while the held request is still in flight.
	deadline = time.Now().Add(5 * time.Second)
	for {
		if _, err := http.Get(url + "/healthz"); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("drain never closed the listener")
		}
		time.Sleep(5 * time.Millisecond)
	}

	close(s.hold)
	r := <-done
	if r.err != nil {
		t.Fatalf("held request failed during drain: %v", r.err)
	}
	if r.code != http.StatusOK {
		t.Fatalf("held request got %d during drain, want 200", r.code)
	}
	if err := <-shut; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}
