package electrical

import (
	"math"
	"testing"

	"lapcc/internal/graph"
	"lapcc/internal/linalg"
	"lapcc/internal/rounds"
)

func TestSeriesResistors(t *testing.T) {
	// Path of 3 unit resistors: R_eff(0,3) = 3.
	nw, err := NewNetwork(graph.Path(4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := nw.EffectiveResistance(0, 3, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-3) > 1e-8 {
		t.Fatalf("R_eff = %v, want 3", r)
	}
}

func TestParallelResistors(t *testing.T) {
	// Two parallel unit resistors: R_eff = 1/2.
	g := graph.New(2)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(0, 1, 1)
	nw, err := NewNetwork(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := nw.EffectiveResistance(0, 1, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-0.5) > 1e-8 {
		t.Fatalf("R_eff = %v, want 0.5", r)
	}
}

func TestWheatstoneBridgeBalance(t *testing.T) {
	// Balanced Wheatstone bridge: no current through the bridge edge.
	//   0 -1- 1 -1- 3,  0 -1- 2 -1- 3, bridge 1-2.
	g := graph.New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 3, 1)
	g.MustAddEdge(0, 2, 1)
	g.MustAddEdge(2, 3, 1)
	bridge := g.MustAddEdge(1, 2, 5)
	nw, err := NewNetwork(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	phi, err := nw.PolePotentials(0, 3, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	currents := nw.Currents(phi)
	if math.Abs(currents[bridge]) > 1e-8 {
		t.Fatalf("balanced bridge carries %v", currents[bridge])
	}
	// R_eff of the balanced bridge = 1 (two series pairs in parallel).
	if r := phi[0] - phi[3]; math.Abs(r-1) > 1e-8 {
		t.Fatalf("R_eff = %v, want 1", r)
	}
}

func TestKirchhoffCurrentLaw(t *testing.T) {
	g, err := graph.RandomRegular(40, 6, 5)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := NewNetwork(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	phi, err := nw.PolePotentials(0, 39, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	currents := nw.Currents(phi)
	div := make([]float64, g.N())
	for i, e := range g.Edges() {
		div[e.U] -= currents[i]
		div[e.V] += currents[i]
	}
	for v := 0; v < g.N(); v++ {
		want := 0.0
		if v == 0 {
			want = -1
		}
		if v == 39 {
			want = 1
		}
		if math.Abs(div[v]-want) > 1e-7 {
			t.Fatalf("KCL violated at %d: %v (want %v)", v, div[v], want)
		}
	}
}

func TestEnergyEqualsThomson(t *testing.T) {
	// Energy of the electrical flow equals R_eff under unit current
	// (Thomson's principle at the optimum).
	g := graph.Grid(5, 5)
	nw, err := NewNetwork(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	phi, err := nw.PolePotentials(0, 24, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	reff := phi[0] - phi[24]
	if e := nw.Energy(phi); math.Abs(e-reff) > 1e-7 {
		t.Fatalf("energy %v != R_eff %v", e, reff)
	}
}

func TestRayleighMonotonicity(t *testing.T) {
	// Adding an edge can only lower effective resistance.
	base := graph.Grid(4, 4)
	nwA, err := NewNetwork(base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rA, err := nwA.EffectiveResistance(0, 15, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	richer := base.Clone()
	richer.MustAddEdge(0, 15, 1)
	nwB, err := NewNetwork(richer, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rB, err := nwB.EffectiveResistance(0, 15, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if rB > rA+1e-9 {
		t.Fatalf("adding an edge raised R_eff: %v -> %v", rA, rB)
	}
}

func TestMaxCurrentEdgeAndErrors(t *testing.T) {
	g := graph.Path(3)
	nw, err := NewNetwork(g, Options{Ledger: rounds.New()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.PolePotentials(1, 1, 1e-6); err == nil {
		t.Fatal("same poles accepted")
	}
	phi, err := nw.PolePotentials(0, 2, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	idx, mag := nw.MaxCurrentEdge(phi)
	if idx < 0 || math.Abs(mag-1) > 1e-8 {
		t.Fatalf("max edge %d carrying %v, want 1 (series circuit)", idx, mag)
	}
	var zero linalg.Vec = linalg.NewVec(3)
	if i, m := nw.MaxCurrentEdge(zero); i != -1 || m != 0 {
		t.Fatalf("zero potentials gave %d, %v", i, m)
	}
}
