package tcp

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"lapcc/internal/cc"
	"lapcc/internal/transport"
)

// Open resolves a -transport flag value into a delivery backend:
//
//	local                     in-process merge (returns nil: the engine default)
//	mem                       wire-codec round trip in process
//	tcp[,procs=N][,bin=PATH]  multi-process loopback clique; bin execs that
//	                          lapccnode binary per worker, otherwise workers
//	                          run as in-process goroutines over real sockets
//
// The tcp backend takes further options: supervise=1 enables crash
// recovery (worker respawn + barrier replay), ack=DUR and retries=N tune
// the retransmission schedule, and barrier=DUR bounds one delivery attempt.
//
// The returned Transport is nil for "local" (callers pass it straight to
// Options; the engine treats nil as the built-in path). Callers own Close.
func Open(spec string) (cc.Transport, error) {
	return OpenWith(spec, nil)
}

// OpenWith is Open with a socket-level chaos plan attached to the tcp
// backend (a -chaos flag). A non-nil plan implies supervision: scheduled
// faults are only recoverable under it. Non-tcp backends reject a plan.
func OpenWith(spec string, chaos *transport.ChaosPlan) (cc.Transport, error) {
	parts := strings.Split(spec, ",")
	if parts[0] != "tcp" && chaos != nil {
		return nil, fmt.Errorf("transport: chaos plans need the tcp backend, not %q", parts[0])
	}
	switch parts[0] {
	case "", "local":
		if len(parts) > 1 {
			return nil, fmt.Errorf("transport: %q takes no options", parts[0])
		}
		return nil, nil
	case "mem":
		if len(parts) > 1 {
			return nil, fmt.Errorf("transport: mem takes no options")
		}
		return transport.NewMem(), nil
	case "tcp":
		opts := Options{Chaos: chaos, Supervise: chaos != nil}
		for _, kv := range parts[1:] {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("transport: malformed option %q (want key=value)", kv)
			}
			var err error
			switch k {
			case "procs":
				p, aerr := strconv.Atoi(v)
				if aerr != nil || p <= 0 {
					return nil, fmt.Errorf("transport: bad procs %q", v)
				}
				opts.Procs = p
			case "bin":
				opts.Binary = v
			case "supervise":
				var b bool
				b, err = strconv.ParseBool(v)
				opts.Supervise = opts.Supervise || b
			case "ack":
				opts.AckTimeout, err = time.ParseDuration(v)
			case "retries":
				opts.MaxRetries, err = strconv.Atoi(v)
			case "barrier":
				opts.BarrierTimeout, err = time.ParseDuration(v)
			default:
				return nil, fmt.Errorf("transport: unknown option %q", k)
			}
			if err != nil {
				return nil, fmt.Errorf("transport: bad %s value %q: %v", k, v, err)
			}
		}
		return New(opts)
	default:
		return nil, fmt.Errorf("transport: unknown backend %q (want local, mem, or tcp)", parts[0])
	}
}
