package benchgate

import (
	"path/filepath"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: lapcc/internal/cc
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkEngineRun/reference 	      33	  72049062 ns/op	53884552 B/op	  273773 allocs/op
BenchmarkEngineRun/sequential-8 	     506	   4738698 ns/op	      56 B/op	       6 allocs/op
BenchmarkRoute/n=64 	   20790	    115499 ns/op	   99588 B/op	     257 allocs/op
BenchmarkNoMem 	     100	    123456 ns/op
PASS
ok  	lapcc/internal/cc	42.0s
`

func TestParseBenchOutput(t *testing.T) {
	got, err := ParseBenchOutput(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4: %v", len(got), got)
	}
	ref := got["BenchmarkEngineRun/reference"]
	if ref.NsPerOp != 72049062 || ref.BytesPerOp != 53884552 || ref.AllocsPerOp != 273773 {
		t.Fatalf("reference metrics wrong: %+v", ref)
	}
	// The -8 GOMAXPROCS suffix must be stripped so names match baselines
	// recorded on a GOMAXPROCS=1 host.
	if _, ok := got["BenchmarkEngineRun/sequential"]; !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: %v", got)
	}
	// Sub-benchmark names containing digits keep them.
	if _, ok := got["BenchmarkRoute/n=64"]; !ok {
		t.Fatalf("sub-benchmark name mangled: %v", got)
	}
	// ns-only line (no -benchmem columns) still parses.
	if got["BenchmarkNoMem"].NsPerOp != 123456 {
		t.Fatalf("ns-only line not parsed: %+v", got["BenchmarkNoMem"])
	}
}

// Output of a GOMAXPROCS=4 run of the scaling suite: every name carries the
// -4 suffix, including sub-benchmarks whose own labels end in digits.
const sampleScalingOutput = `goos: linux
BenchmarkScaling/apply/workers=1-4 	    1000	    250000 ns/op	       0 B/op	       0 allocs/op
BenchmarkScaling/apply/workers=8-4 	    2000	    125000 ns/op	     152 B/op	       4 allocs/op
PASS
`

func TestParseBenchOutputKeepProcs(t *testing.T) {
	got, err := ParseBenchOutputProcs(strings.NewReader(sampleScalingOutput), true)
	if err != nil {
		t.Fatal(err)
	}
	// The -4 GOMAXPROCS suffix becomes an @procs=4 tag instead of vanishing:
	// the worker label ("workers=8") must survive untouched, and the procs
	// level must stay visible so runs at different GOMAXPROCS never diff
	// against each other.
	if _, ok := got["BenchmarkScaling/apply/workers=8@procs=4"]; !ok {
		t.Fatalf("keep-procs normalisation wrong: %v", got)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %v", len(got), got)
	}

	// A GOMAXPROCS=1 run has no suffix; keep-procs mode tags it @procs=1.
	got, err = ParseBenchOutputProcs(strings.NewReader(
		"BenchmarkScaling/apply/workers=8 \t 100 \t 500000 ns/op\n"), true)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got["BenchmarkScaling/apply/workers=8@procs=1"]; !ok {
		t.Fatalf("suffixless line not tagged @procs=1: %v", got)
	}
}

// TestGateSkipsCrossProcsBaseline is the regression test for the gate's
// GOMAXPROCS=1 assumption: a scaling baseline recorded on a GOMAXPROCS>1
// host must neither be compared ratio-for-ratio against a GOMAXPROCS=1
// fresh run (the old suffix-stripping bug) nor flagged as missing from it.
func TestGateSkipsCrossProcsBaseline(t *testing.T) {
	// Baseline recorded at GOMAXPROCS=4, where 8 workers ran 2x faster than 1.
	baseline, err := ParseBenchOutputProcs(strings.NewReader(sampleScalingOutput), true)
	if err != nil {
		t.Fatal(err)
	}
	// Fresh run on a 1-CPU host: workers=8 pays overhead instead of winning —
	// 4x the baseline's GOMAXPROCS=4 figure, far past every tolerance.
	fresh, err := ParseBenchOutputProcs(strings.NewReader(
		"BenchmarkScaling/apply/workers=1 \t 100 \t 260000 ns/op\n"+
			"BenchmarkScaling/apply/workers=8 \t 100 \t 500000 ns/op\n"), true)
	if err != nil {
		t.Fatal(err)
	}
	gated := FilterByProcs(baseline, fresh)
	if len(gated) != 0 {
		t.Fatalf("procs=4 baseline entries gated against a procs=1 run: %v", gated)
	}
	if regs := Diff(gated, fresh, DefaultTolerance); len(regs) != 0 {
		t.Fatalf("cross-procs comparison produced regressions: %v", regs)
	}

	// Same-procs entries still gate: a fresh procs=4 run 3x slower than the
	// procs=4 baseline is a real regression and must be flagged.
	slow := map[string]Metrics{
		"BenchmarkScaling/apply/workers=1@procs=4": {NsPerOp: 750000},
		"BenchmarkScaling/apply/workers=8@procs=4": {NsPerOp: 130000},
	}
	gated = FilterByProcs(baseline, slow)
	if len(gated) != len(baseline) {
		t.Fatalf("matching-procs baseline entries dropped: %v", gated)
	}
	regs := Diff(gated, slow, DefaultTolerance)
	if len(regs) != 1 || regs[0].Name != "BenchmarkScaling/apply/workers=1@procs=4" {
		t.Fatalf("same-procs regression not flagged: %v", regs)
	}

	// Untagged names (non-scaling suites routed through the filter) always
	// pass through.
	plain := map[string]Metrics{"BenchmarkEngineRun/reference": {NsPerOp: 1}}
	if got := FilterByProcs(plain, fresh); len(got) != 1 {
		t.Fatalf("untagged baseline entry dropped: %v", got)
	}
}

func TestParseBenchOutputEmpty(t *testing.T) {
	if _, err := ParseBenchOutput(strings.NewReader("PASS\nok\n")); err == nil {
		t.Fatal("want error for input with no benchmark lines")
	}
}

func TestDiffWithinTolerancePasses(t *testing.T) {
	base := map[string]Metrics{
		"BenchmarkA": {NsPerOp: 1000, BytesPerOp: 100, AllocsPerOp: 10},
	}
	fresh := map[string]Metrics{
		"BenchmarkA": {NsPerOp: 1700, BytesPerOp: 140, AllocsPerOp: 12},
		"BenchmarkB": {NsPerOp: 999999}, // new benchmark: not gated
	}
	if regs := Diff(base, fresh, DefaultTolerance); len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}
}

func TestDiffFlagsPerturbedMetric(t *testing.T) {
	base := map[string]Metrics{
		"BenchmarkA": {NsPerOp: 1000, BytesPerOp: 100, AllocsPerOp: 10},
	}
	fresh := map[string]Metrics{
		// allocs 10 -> 20 breaches the 1.25x allocs tolerance; the other
		// metrics stay inside theirs.
		"BenchmarkA": {NsPerOp: 1100, BytesPerOp: 110, AllocsPerOp: 20},
	}
	regs := Diff(base, fresh, DefaultTolerance)
	if len(regs) != 1 {
		t.Fatalf("want exactly the allocs regression, got %v", regs)
	}
	if regs[0].Metric != "allocs/op" || regs[0].Fresh != 20 {
		t.Fatalf("wrong regression: %+v", regs[0])
	}
	if !strings.Contains(regs[0].String(), "allocs/op") {
		t.Fatalf("unhelpful message: %q", regs[0].String())
	}
}

func TestDiffFlagsMissingBenchmark(t *testing.T) {
	base := map[string]Metrics{"BenchmarkGone": {NsPerOp: 1}}
	regs := Diff(base, map[string]Metrics{}, DefaultTolerance)
	if len(regs) != 1 || !regs[0].Missing {
		t.Fatalf("want one missing-benchmark regression, got %v", regs)
	}
}

func TestDiffImprovementsPass(t *testing.T) {
	base := map[string]Metrics{"BenchmarkA": {NsPerOp: 1000, BytesPerOp: 100, AllocsPerOp: 10}}
	fresh := map[string]Metrics{"BenchmarkA": {NsPerOp: 10, BytesPerOp: 1, AllocsPerOp: 0}}
	if regs := Diff(base, fresh, DefaultTolerance); len(regs) != 0 {
		t.Fatalf("improvements must not fail the gate: %v", regs)
	}
}

func TestDiffWorkloadsExact(t *testing.T) {
	base := map[string]Workload{
		"lapsolver": {CleanRounds: 314, FaultyRounds: 321},
	}
	same := map[string]Workload{
		"lapsolver": {CleanRounds: 314, FaultyRounds: 321},
	}
	if regs := DiffWorkloads(base, same); len(regs) != 0 {
		t.Fatalf("identical rounds must pass: %v", regs)
	}
	// Round counts are deterministic: a single extra round is a regression.
	drift := map[string]Workload{
		"lapsolver": {CleanRounds: 314, FaultyRounds: 322},
	}
	regs := DiffWorkloads(base, drift)
	if len(regs) != 1 || regs[0].Metric != "faulty_rounds" {
		t.Fatalf("want the faulty_rounds drift flagged, got %v", regs)
	}
}

// TestGatePerturbedBaselineFails is the acceptance check for the gate
// wiring: against a baseline whose metrics were perturbed past threshold,
// the gate must report regressions (cmd/benchgate turns any regression
// into a non-zero exit). The faults suite is used because its in-process
// re-measure is fast and fully deterministic.
func TestGatePerturbedBaselineFails(t *testing.T) {
	repoRoot := "../.."
	s, err := SuiteByName("faults")
	if err != nil {
		t.Fatal(err)
	}

	// Unmodified baseline: the gate passes.
	clean, err := GateSuite(s, repoRoot, "", "", DefaultTolerance, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !clean.Passed() {
		t.Fatalf("gate fails on unmodified tree: %v", clean.Regressions)
	}

	// Perturb one round count in a copied baseline: the gate must fail.
	base, err := Load(filepath.Join(repoRoot, s.Baseline))
	if err != nil {
		t.Fatal(err)
	}
	wl := base.Workloads["lapsolver"]
	wl.FaultyRounds += 40
	base.Workloads["lapsolver"] = wl
	dir := t.TempDir()
	if err := base.WriteFile(filepath.Join(dir, s.Baseline)); err != nil {
		t.Fatal(err)
	}
	perturbed, err := GateSuite(s, dir, "", "", DefaultTolerance, nil)
	if err != nil {
		t.Fatal(err)
	}
	if perturbed.Passed() {
		t.Fatal("gate passed against a perturbed baseline")
	}
	found := false
	for _, r := range perturbed.Regressions {
		if r.Name == "lapsolver" && r.Metric == "faulty_rounds" {
			found = true
		}
	}
	if !found {
		t.Fatalf("perturbed metric not flagged: %v", perturbed.Regressions)
	}
	// The fresh measurements are still written out for inspection.
	if perturbed.Fresh.Workloads["lapsolver"].FaultyRounds == wl.FaultyRounds {
		t.Fatal("fresh measurement echoed the perturbed baseline")
	}
}
