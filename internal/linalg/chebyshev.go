package linalg

import (
	"fmt"
	"math"
)

// PreconCheby implements the preconditioned Chebyshev iteration of
// Theorem 2.2 (Peng's formulation): given symmetric PSD operators A and B
// with A <= B <= kappa*A (in the Loewner order), it approximates A^+ b to
// relative error eps in the A-norm using O(sqrt(kappa) * log(1/eps))
// iterations, each consisting of one matvec with A, one solve with B, and a
// constant number of vector operations.
//
// In the congested-clique accounting of Theorem 1.1, the matvec with A = L_G
// costs O(1) rounds and the B-solve costs zero rounds because the sparsifier
// is globally known; the caller charges those costs per iteration.

// ChebyOptions configures PreconCheby.
type ChebyOptions struct {
	// Kappa is the relative condition number with A <= B <= Kappa*A.
	// Must be >= 1.
	Kappa float64
	// Eps is the target relative error in the A-norm, in (0, 1/2].
	Eps float64
	// MaxIter optionally caps iterations; zero means the theory bound
	// ceil(sqrt(Kappa) * ln(2/Eps)) + 1.
	MaxIter int
	// OnIteration, if non-nil, is invoked once per iteration — the hook the
	// congested-clique driver uses to charge per-iteration round costs.
	OnIteration func()
	// X0, if non-nil, warm-starts the iteration from the given guess instead
	// of zero: the session layer seeds it with the previous solve's
	// potentials, so the polynomial only has to contract the (small)
	// remaining error. X0 is read, never modified. The iteration count is
	// unchanged — warm starting improves the achieved residual, not the
	// worst-case bound — so round accounting is identical either way.
	X0 Vec
}

// ChebyResult reports a PreconCheby run.
type ChebyResult struct {
	Iterations int
}

// PreconCheby runs the preconditioned Chebyshev iteration. bSolve must
// return an (approximate) solution of B y = r; for Laplacian preconditioners
// it should project out the nullspace. The returned x approximates A^+ b.
func PreconCheby(a Operator, bSolve func(Vec) (Vec, error), b Vec, opts ChebyOptions) (Vec, ChebyResult, error) {
	n := a.Dim()
	if len(b) != n {
		return nil, ChebyResult{}, fmt.Errorf("linalg: rhs length %d for operator dimension %d", len(b), n)
	}
	if opts.Kappa < 1 {
		return nil, ChebyResult{}, fmt.Errorf("linalg: kappa %v < 1", opts.Kappa)
	}
	if opts.Eps <= 0 || opts.Eps > 0.5 {
		return nil, ChebyResult{}, fmt.Errorf("linalg: eps %v outside (0, 1/2]", opts.Eps)
	}

	// The preconditioned operator B^{-1}A has spectrum (on the range) inside
	// [1/kappa, 1].
	lamMin := 1 / opts.Kappa
	lamMax := 1.0
	iters := opts.MaxIter
	if iters == 0 {
		iters = int(math.Ceil(math.Sqrt(opts.Kappa)*math.Log(2/opts.Eps))) + 1
	}

	theta := (lamMax + lamMin) / 2
	delta := (lamMax - lamMin) / 2

	x := NewVec(n)
	r := b.Clone()
	av := NewVec(n)
	if opts.X0 != nil {
		if len(opts.X0) != n {
			return nil, ChebyResult{}, fmt.Errorf("linalg: warm start length %d for operator dimension %d", len(opts.X0), n)
		}
		// Shifted problem: iterate on A y = b - A x0 and accumulate into
		// x = x0 + y. Both branches below only ever touch x and r, so
		// seeding them here is the entire warm start.
		copy(x, opts.X0)
		a.Apply(av, x)
		r.AXPY(-1, av)
	}

	if delta < 1e-14 {
		// kappa ~ 1: B is (a scalar multiple of) A; Richardson steps suffice.
		for k := 0; k < iters; k++ {
			if opts.OnIteration != nil {
				opts.OnIteration()
			}
			z, err := bSolve(r)
			if err != nil {
				return nil, ChebyResult{}, err
			}
			z.Scale(1 / theta)
			x.AXPY(1, z)
			a.Apply(av, x)
			copy(r, b)
			r.AXPY(-1, av)
		}
		return x, ChebyResult{Iterations: iters}, nil
	}

	sigma := theta / delta
	rho := 1 / sigma

	if opts.OnIteration != nil {
		opts.OnIteration()
	}
	z, err := bSolve(r)
	if err != nil {
		return nil, ChebyResult{}, err
	}
	d := z.Clone()
	d.Scale(1 / theta)

	count := 1
	for k := 1; k < iters; k++ {
		if opts.OnIteration != nil {
			opts.OnIteration()
		}
		x.AXPY(1, d)
		a.Apply(av, d)
		r.AXPY(-1, av)
		z, err = bSolve(r)
		if err != nil {
			return nil, ChebyResult{}, err
		}
		rhoNext := 1 / (2*sigma - rho)
		for i := range d {
			d[i] = rhoNext*rho*d[i] + 2*rhoNext/delta*z[i]
		}
		rho = rhoNext
		count++
	}
	x.AXPY(1, d)
	return x, ChebyResult{Iterations: count}, nil
}

// ChebyIterationBound returns the iteration count the theory prescribes for
// a given kappa and eps: O(sqrt(kappa) log(1/eps)). Exposed so experiments
// can compare measured against predicted counts.
func ChebyIterationBound(kappa, eps float64) int {
	return int(math.Ceil(math.Sqrt(kappa)*math.Log(2/eps))) + 1
}
