// Command lapccd is the solver-as-a-service daemon: it serves the facade's
// algorithms over HTTP/JSON (see internal/serve for the wire format and the
// endpoint list) with pooled per-topology sessions, bounded-inflight
// admission control, and per-request round/wall budgets.
//
//	go run ./cmd/lapccd -addr 127.0.0.1:8080
//	curl -s localhost:8080/v1/solve -d '{"graph":{"n":3,"edges":[[0,1,1],[1,2,1]]},"rhs":[[1,0,-1]]}'
//	curl -s localhost:8080/v1/stats
//
// Repeat topologies (same vertex count and edge list, any weights) hit the
// session pool and skip the Theorem 3.3 preprocessing; responses stay
// bit-identical to direct library calls. The /metrics, /metrics.json, and
// /debug/pprof/ endpoints expose the live registry of the whole stack.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"lapcc/internal/cc"
	"lapcc/internal/linalg"
	"lapcc/internal/metrics"
	"lapcc/internal/serve"
	"lapcc/internal/trace"
	"lapcc/internal/transport"
	"lapcc/internal/transport/tcp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lapccd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "listen address (host:port; :0 picks a free port)")
		poolSize = flag.Int("pool", 8, "pooled sessions per op kind (LRU-evicted beyond this)")
		inflight = flag.Int("max-inflight", 0, "admitted concurrent requests; excess sheds with 429 (0 = 2*GOMAXPROCS)")
		workers  = flag.Int("workers", 0, "worker count for the numerical core (0 = GOMAXPROCS); results are bit-identical at any setting")
		drain    = flag.Duration("drain", 10*time.Second, "graceful-shutdown window: on SIGTERM/SIGINT stop accepting and wait this long for in-flight requests")
		flushTo  = flag.String("metrics-flush", "", "write a final metrics JSON snapshot to this path on shutdown (\"-\" = stderr; empty disables)")

		accessLog     = flag.Bool("access-log", false, "write one JSON access-log line per request to stderr (request ID, op, status, latency)")
		traceRing     = flag.Int("trace-ring", serve.DefaultTraceRing, "how many recent ?trace=1 request traces /v1/trace/{id} retains")
		flightPath    = flag.String("flight", "", "attach a transport flight recorder: its event ring is auto-dumped here on unrecoverable transport failure and served at /debug/flight")
		transportSpec = flag.String("transport", "local", "delivery backend for solver runs: 'local', 'mem', or 'tcp[,procs=N][,bin=PATH][,supervise=1]'; a non-local backend serializes requests (max-inflight 1)")
		chaosSpec     = flag.String("chaos", "", "socket-level chaos plan for the tcp backend (see transport.ParseChaosPlan); implies supervision")
	)
	flag.Parse()

	reg := metrics.NewRegistry()
	cc.SetMetrics(reg)
	linalg.SetMetrics(reg)
	defer func() {
		cc.SetMetrics(nil)
		linalg.SetMetrics(nil)
	}()

	opts := serve.Options{
		PoolSize:    *poolSize,
		MaxInflight: *inflight,
		Workers:     *workers,
		Metrics:     reg,
		TraceRing:   *traceRing,
	}
	if *accessLog {
		opts.AccessLog = os.Stderr
	}
	var fl *trace.Flight
	if *flightPath != "" || strings.HasPrefix(*transportSpec, "tcp") {
		fl = trace.NewFlight(trace.DefaultFlightSize)
		opts.Flight = fl
	}
	if *transportSpec != "" && *transportSpec != "local" {
		var chaos *transport.ChaosPlan
		if *chaosSpec != "" {
			var err error
			if chaos, err = transport.ParseChaosPlan(*chaosSpec); err != nil {
				return err
			}
		}
		bt, err := tcp.OpenWith(*transportSpec, chaos)
		if err != nil {
			return err
		}
		if bt != nil {
			defer bt.Close()
			opts.Transport = bt
			fmt.Printf("lapccd: transport %s\n", *transportSpec)
			if tt, ok := bt.(*tcp.Transport); ok {
				tt.SetFlight(fl, *flightPath)
				// /v1/stats and the lapcc_transport_* gauges snapshot the
				// coordinator's recovery counters plus this process's
				// chaos-injection counters.
				opts.TransportStats = func() serve.TransportStats {
					rec := tt.Recovery()
					resets, partials, stalls := transport.ChaosCounters()
					return serve.TransportStats{
						Epoch:             tt.Epoch(),
						Kills:             rec.Kills,
						Restarts:          rec.Restarts,
						Respawns:          rec.Respawns,
						ReplayedBarriers:  rec.ReplayedBarriers,
						HeartbeatFailures: rec.HeartbeatFailures,
						ChaosResets:       resets,
						ChaosPartials:     partials,
						ChaosStalls:       stalls,
					}
				}
			}
		}
	} else if *chaosSpec != "" {
		return fmt.Errorf("-chaos requires a tcp -transport")
	}

	srv := serve.New(opts)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// Slow-client hardening: a stalled or malicious connection must not pin
	// a server goroutine forever. Solves themselves run within ReadTimeout's
	// body window; per-request round budgets bound them much tighter.
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	fmt.Printf("lapccd: serving on http://%s (pool %d, stats at /v1/stats)\n", ln.Addr(), *poolSize)

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	stop := make(chan os.Signal, 2)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-stop:
		// Graceful drain: stop accepting, let every in-flight request
		// complete within the window (zero 5xx under a clean SIGTERM),
		// then flush the final metrics snapshot. A second signal aborts
		// the drain immediately.
		fmt.Printf("lapccd: %s, draining (up to %s)\n", sig, *drain)
		go func() {
			s := <-stop
			fmt.Fprintf(os.Stderr, "lapccd: second %s during drain, aborting\n", s)
			os.Exit(1)
		}()
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		err := hs.Shutdown(ctx)
		if ferr := flushMetrics(reg, *flushTo); ferr != nil && err == nil {
			err = ferr
		}
		if err != nil {
			return fmt.Errorf("drain: %w", err)
		}
		fmt.Printf("lapccd: drained cleanly (%d requests served, %d shed)\n",
			srv.Stats().Requests, srv.Stats().Shed)
		return nil
	}
}

// flushMetrics writes the registry's final JSON snapshot to the configured
// sink ("" disables, "-" is stderr) so a drained daemon leaves its counters
// behind for the operator.
func flushMetrics(reg *metrics.Registry, dst string) error {
	if dst == "" {
		return nil
	}
	if dst == "-" {
		return reg.WriteJSON(os.Stderr)
	}
	f, err := os.Create(dst)
	if err != nil {
		return fmt.Errorf("metrics flush: %w", err)
	}
	if err := reg.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("metrics flush: %w", err)
	}
	return f.Close()
}
