package maxflow

import (
	"fmt"
	"math"
	"sort"

	"lapcc/internal/cc"
	"lapcc/internal/electrical"
	"lapcc/internal/flowround"
	"lapcc/internal/graph"
	"lapcc/internal/lapsolver"
	"lapcc/internal/linalg"
	"lapcc/internal/metrics"
	"lapcc/internal/rounds"
	"lapcc/internal/sparsify"
	"lapcc/internal/trace"
)

// Options configures the interior-point max-flow path (Theorem 1.2).
type Options struct {
	// Ledger, if non-nil, receives round costs.
	Ledger *rounds.Ledger
	// FastSolve selects how the per-iteration Laplacian systems are solved:
	// true solves internally with CG and charges the Theorem 1.1 round
	// formula calibrated by a measured sparsifier alpha; false runs the
	// full sparsifier + Chebyshev stack (measured rounds, slower
	// wall-clock).
	FastSolve bool
	// FreshBuild restores the pre-session behavior: rebuild the support
	// graph and solver from scratch on every solve instead of reweighting
	// the build-once session. Kept as the benchmark baseline and the
	// differential-test oracle; charged rounds are identical either way.
	FreshBuild bool
	// IterBudgetFactor scales the m^{3/7} U^{1/7} iteration budget
	// (default 8).
	IterBudgetFactor float64
	// DisableBoosting turns off the Boosting step (ablation E5b).
	DisableBoosting bool
	// SolveEps is the per-iteration Laplacian solve precision
	// (default 1e-10, i.e. Omega(1/poly m) as the proof requires).
	SolveEps float64
	// Trace, if non-nil, receives hierarchical span and cost events for
	// this call (see internal/trace); a nil tracer records nothing and
	// costs nothing.
	Trace *trace.Tracer
	// Faults, if non-nil, subjects every network primitive of the run —
	// the Full-mode solver stack and the flow-rounding cascade — to the
	// given fault plan, with delivery restored by the reliable
	// retransmission layer. The flow is bit-identical to a fault-free run;
	// only the round cost grows.
	Faults *cc.FaultPlan
	// Transport, if non-nil, physically carries every network primitive of
	// the pipeline — the Full-mode solver stack and the flow-rounding
	// cascade — through the given delivery backend (see cc.Transport); nil
	// keeps the in-process path. The flow is bit-identical either way.
	Transport cc.Transport
	// Budget, if non-nil, bounds the run: it is checked at every IPM
	// iteration and propagated to the electrical session and the rounding
	// cascade. Exhaustion aborts with an error unwrapping to
	// rounds.ErrBudgetExceeded carrying the partial stats.
	Budget *rounds.Budget
	// Metrics, if non-nil, receives live counters for the run (IPM
	// iterations, boostings, rounding outcomes) and a mirror of the
	// ledger's cost stream, and is propagated to every stage of the
	// pipeline. A nil registry records nothing and costs nothing.
	Metrics *metrics.Registry
	// Workers sets the worker count for the run's numerical kernels —
	// the per-iteration electrical solves and (on the Full path) the
	// sparsifier builds (0 = GOMAXPROCS, 1 = sequential). The IPM's
	// augmentation and fixing solves are data-dependent and stay
	// sequential; Workers parallelizes inside each solve. The flow is
	// bit-identical at any worker count.
	Workers int
}

func (o *Options) defaults() {
	if o.IterBudgetFactor == 0 {
		o.IterBudgetFactor = 8
	}
	if o.SolveEps == 0 {
		o.SolveEps = 1e-10
	}
	o.Budget.BindIfUnbound(o.Ledger)
}

// Result reports a Theorem 1.2 run.
type Result struct {
	// Stats carries the shared round accounting of the call.
	rounds.Stats
	// Value is the exact maximum flow value.
	Value int64
	// Flow is the per-arc integral optimal flow.
	Flow []int64
	// IPMIterations counts Augmentation+Fixing iterations executed.
	IPMIterations int
	// IterBudget is the m^{3/7}U^{1/7}-shaped budget the run was allowed.
	IterBudget int
	// Boostings counts Boosting steps.
	Boostings int
	// IPMValue is the (fractional) flow value the IPM reached before
	// rounding, in original-arc units.
	IPMValue float64
	// NegativeArcs counts original arcs whose rounded gadget-recovered flow
	// fell outside [0, capacity] and was clamped — a convergence-quality
	// signal (the final stage absorbs any slack; tests pin it small).
	NegativeArcs int
	// FinalAugmentations counts the augmenting paths of the last stage
	// (the paper needs one).
	FinalAugmentations int
}

// MaxFlow computes the exact maximum s-t flow of dg following the
// Theorem 1.2 pipeline: Algorithm 2's preconditioning edges and three-edge
// initialization gadget, Augmentation/Fixing/Boosting iterations driven by
// Laplacian solves, Lemma 4.2 rounding, and the final augmenting-path
// stage. The target value comes from the Dinic oracle, standing in for the
// outer binary search (whose O(log nU) factor the theorem absorbs into
// m^{o(1)}); see DESIGN.md for all substitutions.
func MaxFlow(dg *graph.DiGraph, s, t int, opts Options) (*Result, error) {
	opts.defaults()
	opts.Metrics.MirrorLedger(opts.Ledger)
	snap := rounds.Snap(opts.Ledger)
	spansBefore := opts.Trace.SpanCount()
	res, err := maxFlowImpl(dg, s, t, opts)
	if res != nil {
		res.Stats = snap.Stats()
		res.Spans = opts.Trace.SpanCount() - spansBefore
		if reg := opts.Metrics; reg != nil {
			reg.Counter("lapcc_maxflow_runs_total", "MaxFlow calls.").Inc()
			reg.Counter("lapcc_maxflow_ipm_iterations_total", "Augmentation+Fixing IPM iterations.").Add(int64(res.IPMIterations))
			reg.Counter("lapcc_maxflow_boostings_total", "Boosting steps.").Add(int64(res.Boostings))
			reg.Counter("lapcc_maxflow_negative_arcs_total", "Rounded arc flows clamped into capacity range.").Add(int64(res.NegativeArcs))
			reg.Counter("lapcc_maxflow_final_augmentations_total", "Augmenting paths of the final stage.").Add(int64(res.FinalAugmentations))
		}
	}
	return res, err
}

func maxFlowImpl(dg *graph.DiGraph, s, t int, opts Options) (*Result, error) {
	if err := checkEndpoints(dg, s, t); err != nil {
		return nil, err
	}
	res := &Result{Flow: make([]int64, dg.M())}
	if dg.M() == 0 {
		return res, nil
	}
	tr := opts.Trace
	tr.Attach(opts.Ledger)
	sp := tr.Start("maxflow")
	defer sp.End()

	// Target value; stands in for the outer binary search over F (whose
	// O(log nU) factor the theorem absorbs into m^{o(1)}).
	osp := tr.Start("oracle")
	fstar, _, err := Dinic(dg, s, t)
	osp.End()
	if err != nil {
		return nil, err
	}
	if fstar == 0 {
		return res, nil
	}

	isp := tr.Start("init")
	ipm, err := newIPMState(dg, s, t, fstar, opts)
	isp.End()
	if err != nil {
		return nil, err
	}
	if err := ipm.run(res); err != nil {
		return nil, err
	}
	rsp := tr.Start("round")
	rounded, err := ipm.roundFlow(res)
	rsp.End()
	if err != nil {
		return nil, err
	}
	fsp := tr.Start("finish")
	err = finishWithAugmentation(dg, s, t, fstar, rounded, opts.Ledger, res)
	fsp.End()
	if err != nil {
		return nil, err
	}
	return res, nil
}

// ipmState holds the instance built by Algorithm 2's initialization:
//
//   - every original arc e = (u,v) of capacity u_e becomes the symmetric
//     edge (u,v) plus the gadget edges (s,v) and (u,t), all with two-sided
//     capacity u_e (lines 2-4). The gadget ships u_e units s -> v -> u -> t
//     using (u,v) backward, so a flow g in [0, u_e] on the original arc
//     corresponds to f(u,v) = g - u_e; legality of the recovered flow is
//     structural rather than hoped-for. Gadget edges whose endpoints
//     coincide (arcs touching s or t) degenerate to self-loops and are
//     dropped; the two remaining edges still ship u_e.
//   - m preconditioning (t,s) edges with two-sided capacity 2U (line 1).
//
// The total demand is fstar + sum(u_e) + 2mU: the directed optimum plus
// the gadget and preconditioner shipping.
type ipmState struct {
	dg     *graph.DiGraph
	s, t   int
	opts   Options
	m      int // original arcs (the first m edges)
	total  int
	from   []int
	to     []int
	hi     []float64 // upper flow bound per edge
	lo     []float64 // lower flow bound per edge
	f      []float64
	boost  []float64 // resistance multiplier from Boosting
	eta    float64
	budget int
	demand float64
	fstar  float64

	alphaRef float64 // measured sparsifier quality for charged solves

	// sess is the build-once/reweight-per-iteration electrical session over
	// the support topology (fixed for the whole IPM). It is created at the
	// first solve — the first barrier weights are already known then — and
	// every later solve only swaps weights in place. Nil under FreshBuild.
	sess *electrical.Session

	// solveHook, when non-nil, observes every electrical solve's inputs —
	// a test/bench seam for capturing a run's weight schedule.
	solveHook func(w []float64, b linalg.Vec, slot string)
}

func newIPMState(dg *graph.DiGraph, s, t int, fstar int64, opts Options) (*ipmState, error) {
	m := dg.M()
	u := float64(dg.MaxCapacity())
	st := &ipmState{dg: dg, s: s, t: t, opts: opts, m: m}
	addEdge := func(from, to int, capacity float64) {
		st.from = append(st.from, from)
		st.to = append(st.to, to)
		st.hi = append(st.hi, capacity)
		st.lo = append(st.lo, -capacity)
	}
	var gadgetShip float64
	for _, a := range dg.Arcs() {
		addEdge(a.From, a.To, float64(a.Cap))
	}
	for _, a := range dg.Arcs() {
		// Gadget edges (Algorithm 2 lines 2-4); self-loops dropped.
		if a.To != s {
			addEdge(s, a.To, float64(a.Cap))
		}
		if a.From != t {
			addEdge(a.From, t, float64(a.Cap))
		}
		gadgetShip += float64(a.Cap)
	}
	for i := 0; i < m; i++ {
		addEdge(t, s, 2*u)
	}
	st.total = len(st.from)
	st.f = make([]float64, st.total)
	st.boost = make([]float64, st.total)
	for i := range st.boost {
		st.boost[i] = 1
	}
	// eta = 1/14 - (1/7) log_m U, so the m^{1/2 - eta} iteration count is
	// m^{3/7} U^{1/7} (MaxFlow, Algorithm 2 line 9).
	logmU := 0.0
	if m > 1 && u > 1 {
		logmU = math.Log(u) / math.Log(float64(m))
	}
	st.eta = 1.0/14.0 - logmU/7.0
	if st.eta < 0 {
		st.eta = 0
	}
	iters := opts.IterBudgetFactor * math.Pow(float64(m), 0.5-st.eta) * math.Log(float64(m)*u+2)
	st.budget = int(math.Ceil(iters))
	// Demand: original optimum plus the gadget shipping plus fully
	// saturated preconditioners (backward, i.e. s->t through (t,s)).
	st.fstar = float64(fstar)
	st.demand = st.fstar + gadgetShip + float64(2*m)*u

	// Calibrate the charged-solve formula once with a real sparsifier of
	// the support (internal measurement; see DESIGN.md).
	if opts.FastSolve {
		support := st.supportGraph(nil)
		sres, err := sparsify.Sparsify(support, sparsify.Options{Metrics: opts.Metrics, Workers: opts.Workers})
		if err != nil {
			return nil, fmt.Errorf("maxflow: calibrating solver charge: %w", err)
		}
		alpha, err := sparsify.MeasureAlpha(support, sres.H, 120)
		if err != nil {
			return nil, fmt.Errorf("maxflow: calibrating solver charge: %w", err)
		}
		st.alphaRef = alpha
	}
	return st, nil
}

// supportGraph builds the weighted undirected support with conductances w
// (nil w = unit weights).
func (st *ipmState) supportGraph(w []float64) *graph.Graph {
	g := graph.New(st.dg.N())
	for i := 0; i < st.total; i++ {
		weight := 1.0
		if w != nil {
			weight = w[i]
		}
		if weight <= 0 || math.IsInf(weight, 0) || math.IsNaN(weight) {
			weight = 1e-12
		}
		g.MustAddEdge(st.from[i], st.to[i], weight)
	}
	return g
}

// value returns the current s-t value on the full preconditioned instance.
func (st *ipmState) value() float64 {
	var v float64
	for i := 0; i < st.total; i++ {
		if st.from[i] == st.s {
			v += st.f[i]
		}
		if st.to[i] == st.s {
			v -= st.f[i]
		}
	}
	return v
}

// solve runs one Laplacian solve on the current support, with either
// measured (full stack) or charged (CG + Theorem 1.1 formula) rounds. The
// default path reweights the build-once session; FreshBuild rebuilds
// everything per solve (baseline/oracle). slot names the warm-start lane
// ("aug" or "fix"); the two right-hand-side families must not clobber each
// other's seeds. Charged rounds are identical on both paths: the FastSolve
// formula is topology-calibrated, and the full-stack session replays its
// recorded build schedule on reuse (see sparsify.Chain).
func (st *ipmState) solve(w []float64, b linalg.Vec, slot string) (linalg.Vec, error) {
	if st.solveHook != nil {
		st.solveHook(w, b, slot)
	}
	var x linalg.Vec
	var err error
	if st.opts.FreshBuild {
		x, err = st.solveFreshBaseline(w, b)
	} else {
		x, err = st.sessionSolve(w, b, slot)
	}
	if err != nil {
		return nil, fmt.Errorf("maxflow: electrical solve: %w", err)
	}
	if st.opts.FastSolve && st.opts.Ledger != nil {
		charge := int64(linalg.ChebyIterationBound(st.alphaRef*st.alphaRef, st.opts.SolveEps)) + 2
		st.opts.Ledger.Add("maxflow-lapsolve", rounds.Charged, charge,
			"Thm 1.1 solver, n^{o(1)} log(U/eps) rounds (alpha measured)")
	}
	return x, nil
}

// sessionSolve lazily builds the electrical session on the first call (the
// support topology is fixed for the whole IPM) and reweights it in place on
// every later call. This is the only place the IPM constructs a Laplacian
// solver: exactly once per topology.
func (st *ipmState) sessionSolve(w []float64, b linalg.Vec, slot string) (linalg.Vec, error) {
	if st.sess == nil {
		// WarmStart stays off: a warm-seeded solve answers within the same
		// tolerance but not bitwise, and over hundreds of IPM iterations the
		// drift shifts the trajectory and with it the charged-round total.
		// The session's win here is structural reuse; cold solves keep the
		// path bit-identical to a fresh build every iteration.
		opts := electrical.SessionOptions{Trace: st.opts.Trace, Budget: st.opts.Budget, Metrics: st.opts.Metrics, Workers: st.opts.Workers}
		if !st.opts.FastSolve {
			opts.Full = true
			opts.Solver = lapsolver.Options{Ledger: st.opts.Ledger, Trace: st.opts.Trace, Faults: st.opts.Faults, Transport: st.opts.Transport, Workers: st.opts.Workers}
		}
		sess, err := electrical.NewSession(st.supportGraph(w), opts)
		if err != nil {
			return nil, err
		}
		st.sess = sess
	} else if err := st.sess.Reweight(w); err != nil {
		return nil, err
	}
	return st.sess.Potentials(b, st.opts.SolveEps, slot)
}

// solveFreshBaseline is the pre-session behavior: a fresh support graph,
// Laplacian, and (full-stack) solver per solve. Kept for the wall-clock
// benchmark baseline and as the differential-test oracle.
func (st *ipmState) solveFreshBaseline(w []float64, b linalg.Vec) (linalg.Vec, error) {
	support := st.supportGraph(w)
	if st.opts.FastSolve {
		lg := linalg.NewLaplacian(support)
		lg.SetPool(linalg.SharedPool(st.opts.Workers))
		return linalg.LaplacianCGSolver(lg, st.opts.SolveEps)(b)
	}
	solver, err := lapsolver.NewSolver(support, lapsolver.Options{Ledger: st.opts.Ledger, Trace: st.opts.Trace, Faults: st.opts.Faults, Transport: st.opts.Transport, Metrics: st.opts.Metrics, Workers: st.opts.Workers})
	if err != nil {
		return nil, err
	}
	x, _, err := solver.Solve(b, st.opts.SolveEps)
	return x, err
}

// run executes the progress loop (Algorithm 2 lines 6-18): Augmentation and
// Fixing steps, with Boosting when congestion concentrates.
func (st *ipmState) run(res *Result) error {
	sp := st.opts.Trace.Start("ipm")
	defer sp.End()
	res.IterBudget = st.budget
	n := st.dg.N()
	w := make([]float64, st.total)
	rho := make([]float64, st.total)

	prevRemaining := math.Inf(1)
	stagnant := 0
	for iter := 0; iter < st.budget; iter++ {
		if err := st.opts.Budget.Check(fmt.Sprintf("maxflow-iter-%d", iter)); err != nil {
			return err
		}
		remaining := st.demand - st.value()
		// Stop when the whole demand is (almost) routed: the recovered
		// original flow is then within one unit of optimal and rounding
		// plus one augmenting path finishes, as in the paper. A stagnation
		// guard hands persistent numerical stalls to the final stage.
		if remaining <= 0.25 {
			break
		}
		if remaining > prevRemaining-1e-9 {
			stagnant++
			if stagnant > 25 {
				break
			}
		} else {
			stagnant = 0
		}
		prevRemaining = remaining
		isp := st.opts.Trace.Startf("iter-%d", iter)
		// Resistances from the logarithmic barrier (Augmentation line 1),
		// scaled by the Boosting multipliers.
		for i := 0; i < st.total; i++ {
			up := st.hi[i] - st.f[i]
			dn := st.f[i] - st.lo[i]
			r := (1/(up*up) + 1/(dn*dn)) * st.boost[i]
			w[i] = 1 / r
		}

		// Augmentation (Algorithm 3): solve L phi = R * chi_{s,t}.
		b := linalg.NewVec(n)
		b[st.s] = -remaining
		b[st.t] = remaining
		phi, err := st.solve(w, b, "aug")
		if err != nil {
			return err
		}
		res.IPMIterations++

		maxCong := 0.0
		var rho3 float64
		ftilde := make([]float64, st.total)
		for i := 0; i < st.total; i++ {
			ftilde[i] = w[i] * (phi[st.to[i]] - phi[st.from[i]])
			margin := math.Min(st.hi[i]-st.f[i], st.f[i]-st.lo[i])
			rho[i] = ftilde[i] / margin
			a := math.Abs(rho[i])
			if a > maxCong {
				maxCong = a
			}
			rho3 += a * a * a
		}
		rho3 = math.Cbrt(rho3)

		// Step size: shrink with the congestion 3-norm (the paper's
		// delta = 1/(33 ||rho||_3) shape) and never cross a capacity.
		delta := 1.0
		if rho3 > 0 {
			delta = math.Min(delta, 1/(1+rho3))
		}
		if maxCong > 0 {
			delta = math.Min(delta, 0.5/maxCong)
		}

		// Boosting trigger (Algorithm 2 line 11): when congestion
		// concentrates on few edges so hard that progress stalls, boost
		// those edges' resistances instead of stepping. The concentration
		// test compares the max against the 3-norm (which a handful of
		// outliers dominates only when they are genuine bottlenecks).
		stalled := delta < 0.02
		concentrated := maxCong > 4*rho3/math.Cbrt(float64(st.total))
		if !st.opts.DisableBoosting && stalled && concentrated {
			st.boostTop(rho, res)
			if st.opts.Ledger != nil {
				st.opts.Ledger.Add("maxflow-boost", rounds.Measured, 1, "Boosting, O(1) rounds")
			}
			isp.End()
			continue
		}
		for i := 0; i < st.total; i++ {
			st.f[i] += delta * ftilde[i]
		}

		// Fixing (Algorithm 4): repair the conservation drift from the
		// inexact solve with a second electrical flow.
		err = st.fix(w)
		isp.End()
		if err != nil {
			return err
		}
	}
	res.IPMValue, _ = st.recovered()
	return nil
}

// recovered returns the s-t value of the fractional original flow
// g_e = f_e + u_e implied by the gadget encoding, along with the total
// out-of-range mass (g below 0 or above capacity) — ideally both converge
// to (fstar, 0).
func (st *ipmState) recovered() (value, overflow float64) {
	for i := 0; i < st.m; i++ {
		g := st.f[i] + st.hi[i]
		if g < 0 {
			overflow += -g
			g = 0
		}
		if g > st.hi[i] {
			overflow += g - st.hi[i]
			g = st.hi[i]
		}
		if st.from[i] == st.s {
			value += g
		}
		if st.to[i] == st.s {
			value -= g
		}
	}
	return value, overflow
}

// fix repairs conservation at all vertices except s and t.
func (st *ipmState) fix(w []float64) error {
	n := st.dg.N()
	imbalance := linalg.NewVec(n)
	for i := 0; i < st.total; i++ {
		imbalance[st.from[i]] -= st.f[i]
		imbalance[st.to[i]] += st.f[i]
	}
	var residual float64
	for v := 0; v < n; v++ {
		if v != st.s && v != st.t {
			residual += math.Abs(imbalance[v])
		}
	}
	if residual < 1e-12 {
		return nil
	}
	b := linalg.NewVec(n)
	var slack float64
	for v := 0; v < n; v++ {
		if v != st.s && v != st.t {
			b[v] = -imbalance[v]
			slack += imbalance[v]
		}
	}
	// Absorb the counter-imbalance at s and t so b sums to zero.
	b[st.s] = slack / 2
	b[st.t] = slack / 2
	phi, err := st.solve(w, b, "fix")
	if err != nil {
		return err
	}
	for i := 0; i < st.total; i++ {
		theta := w[i] * (phi[st.to[i]] - phi[st.from[i]])
		// Clamp so the repair cannot cross a capacity.
		up := st.hi[i] - st.f[i]
		dn := st.f[i] - st.lo[i]
		if theta > 0.9*up {
			theta = 0.9 * up
		}
		if theta < -0.9*dn {
			theta = -0.9 * dn
		}
		st.f[i] += theta
	}
	return nil
}

// boostTop doubles the resistance multiplier of the m^{4 eta} most
// congested edges (Algorithm 5's arc-splitting, realized as a series
// -resistance increase; see DESIGN.md "Substitutions").
func (st *ipmState) boostTop(rho []float64, res *Result) {
	k := int(math.Ceil(math.Pow(float64(st.m), 4*st.eta)))
	if k < 1 {
		k = 1
	}
	if k > st.total {
		k = st.total
	}
	idx := make([]int, st.total)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return math.Abs(rho[idx[a]]) > math.Abs(rho[idx[b]])
	})
	for _, i := range idx[:k] {
		if st.boost[i] < 1<<20 {
			st.boost[i] *= 2
		}
	}
	res.Boostings++
}

// roundFlow rounds the fractional IPM flow to integers (Lemma 4.2 with
// Delta = O(1/m)) and recovers the original arc flows from the gadget
// encoding, g_e = f_e + u_e, clamped into [0, u_e]; out-of-range rounded
// values are counted in Result.NegativeArcs (a convergence-quality signal —
// zero when the IPM finished).
func (st *ipmState) roundFlow(res *Result) ([]int64, error) {
	// Cancel circulations in the fractional flow first: cycles contribute
	// no value but, once rounded, strand units the legality extraction
	// must then discard (internal computation, divergence-preserving,
	// hence always safe).
	st.cancelCycles(1e-7)

	// Orient every edge by the sign of its flow and round |f| on the
	// resulting digraph; the flow is an s-t flow, as Lemma 4.2 requires.
	rdg := graph.NewDi(st.dg.N())
	absF := make([]float64, st.total)
	for i := 0; i < st.total; i++ {
		v := st.f[i]
		if v >= 0 {
			rdg.MustAddArc(st.from[i], st.to[i], int64(st.hi[i]), 0)
			absF[i] = v
		} else {
			rdg.MustAddArc(st.to[i], st.from[i], int64(st.hi[i]), 0)
			absF[i] = -v
		}
	}
	delta := 1.0
	for delta > 1.0/(4*float64(st.m)) {
		delta /= 2
	}
	snapped, err := flowround.SnapToGrid(rdg, absF, st.s, st.t, delta)
	if err != nil {
		return nil, fmt.Errorf("maxflow: snapping IPM flow: %w", err)
	}
	rounded, err := flowround.RoundWith(rdg, snapped, st.s, st.t, delta, false,
		flowround.Options{Ledger: st.opts.Ledger, Trace: st.opts.Trace, Faults: st.opts.Faults, Transport: st.opts.Transport, Budget: st.opts.Budget, Metrics: st.opts.Metrics})
	if err != nil {
		return nil, fmt.Errorf("maxflow: rounding IPM flow: %w", err)
	}

	legal := make([]int64, st.m)
	for i := 0; i < st.m; i++ {
		signed := rounded[i]
		if st.f[i] < 0 {
			signed = -signed
		}
		g := signed + int64(st.hi[i])
		if g < 0 || g > int64(st.hi[i]) {
			res.NegativeArcs++
		}
		if g < 0 {
			g = 0
		}
		if g > int64(st.hi[i]) {
			g = int64(st.hi[i])
		}
		legal[i] = g
	}
	return legal, nil
}

// finishWithAugmentation takes a capacity-feasible (but possibly
// non-conserving, because backward flows were dropped) integral flow
// candidate, reduces it to a feasible flow, and augments to the exact
// optimum, charging one APSP per augmenting path (Algorithm 2 lines 20-21
// with the CKKL+19 shortest-path subroutine).
func finishWithAugmentation(dg *graph.DiGraph, s, t int, fstar int64, candidate []int64, led *rounds.Ledger, res *Result) error {
	feasible := maxSubflow(dg, candidate, s, t)
	value, err := CheckFlow(dg, feasible, s, t)
	if err != nil {
		return fmt.Errorf("maxflow: internal: extracted flow infeasible: %w", err)
	}
	if led != nil {
		// Making the O(m)-word rounded support globally known for the
		// internal extraction costs one gather round.
		led.Add("maxflow-gather-support", rounds.Measured,
			rounds.TrivialGatherRounds(dg.N(), dg.M(), dg.MaxCapacity()), "gather rounded support")
	}
	// Residual augmentation to optimality.
	r := newResidual(dg)
	for i := range feasible {
		r.cap[2*i] -= feasible[i]
		r.cap[2*i+1] += feasible[i]
	}
	parent := make([]int, r.n)
	for value < fstar {
		for i := range parent {
			parent[i] = -1
		}
		parent[s] = -2
		queue := []int{s}
		for len(queue) > 0 && parent[t] == -1 {
			v := queue[0]
			queue = queue[1:]
			for _, ai := range r.adj[v] {
				if w := r.head[ai]; r.cap[ai] > 0 && parent[w] == -1 {
					parent[w] = ai
					queue = append(queue, w)
				}
			}
		}
		if parent[t] == -1 {
			return fmt.Errorf("maxflow: internal: no augmenting path at value %d < %d", value, fstar)
		}
		bottleneck := fstar - value
		for v := t; v != s; {
			ai := parent[v]
			if r.cap[ai] < bottleneck {
				bottleneck = r.cap[ai]
			}
			v = r.head[ai^1]
		}
		for v := t; v != s; {
			ai := parent[v]
			r.cap[ai] -= bottleneck
			r.cap[ai^1] += bottleneck
			v = r.head[ai^1]
		}
		value += bottleneck
		res.FinalAugmentations++
		if led != nil {
			led.Add("maxflow-final-augment", rounds.Charged, rounds.APSPRounds(r.n), rounds.CiteAPSP)
		}
	}
	for i := range res.Flow {
		res.Flow[i] = r.flowOn(i)
	}
	res.Value = value
	return nil
}

// cancelCycles removes directed cycles from the sign-oriented support of
// the fractional flow by repeated DFS and bottleneck subtraction. The
// divergence at every vertex — and hence the flow value — is unchanged.
func (st *ipmState) cancelCycles(tol float64) {
	n := st.dg.N()
	for {
		// Build the sign-oriented adjacency of edges above the tolerance.
		type halfArc struct {
			edge int
			to   int
		}
		adj := make([][]halfArc, n)
		for i := 0; i < st.total; i++ {
			if st.f[i] > tol {
				adj[st.from[i]] = append(adj[st.from[i]], halfArc{edge: i, to: st.to[i]})
			} else if st.f[i] < -tol {
				adj[st.to[i]] = append(adj[st.to[i]], halfArc{edge: i, to: st.from[i]})
			}
		}
		// Iterative DFS for a directed cycle.
		color := make([]int8, n) // 0 white, 1 gray, 2 black
		parentEdge := make([]int, n)
		parentV := make([]int, n)
		var cycle []int
		var found bool
		for root := 0; root < n && !found; root++ {
			if color[root] != 0 {
				continue
			}
			stack := []int{root}
			parentV[root] = -1
			for len(stack) > 0 && !found {
				v := stack[len(stack)-1]
				if color[v] == 0 {
					color[v] = 1
				}
				advanced := false
				for _, ha := range adj[v] {
					if color[ha.to] == 1 {
						// Back edge: collect the cycle v -> ... -> ha.to -> v.
						cycle = []int{ha.edge}
						for x := v; x != ha.to; x = parentV[x] {
							cycle = append(cycle, parentEdge[x])
						}
						found = true
						break
					}
					if color[ha.to] == 0 {
						parentEdge[ha.to] = ha.edge
						parentV[ha.to] = v
						stack = append(stack, ha.to)
						advanced = true
						break
					}
				}
				if found {
					break
				}
				if !advanced {
					color[v] = 2
					stack = stack[:len(stack)-1]
				}
			}
		}
		if !found {
			return
		}
		// Subtract the bottleneck along the cycle (respecting each edge's
		// traversal direction).
		bottleneck := math.Inf(1)
		for _, e := range cycle {
			if a := math.Abs(st.f[e]); a < bottleneck {
				bottleneck = a
			}
		}
		for _, e := range cycle {
			if st.f[e] > 0 {
				st.f[e] -= bottleneck
			} else {
				st.f[e] += bottleneck
			}
		}
	}
}

// maxSubflow extracts the maximum conserving s-t flow bounded arc-wise by
// the (capacity-feasible, possibly non-conserving) candidate: a Dinic run
// on the candidate's support. This is internal computation on the
// globally-gathered rounded support; it loses the minimum possible value
// relative to the candidate.
func maxSubflow(dg *graph.DiGraph, candidate []int64, s, t int) []int64 {
	r := &residualNet{
		n:    dg.N(),
		head: make([]int, 0, 2*dg.M()),
		cap:  make([]int64, 0, 2*dg.M()),
		adj:  make([][]int, dg.N()),
	}
	for i, a := range dg.Arcs() {
		c := candidate[i]
		if c < 0 {
			c = 0
		}
		if c > a.Cap {
			c = a.Cap
		}
		r.addPair(a.From, a.To, c)
	}
	r.run(s, t)
	out := make([]int64, dg.M())
	for i := range out {
		out[i] = r.flowOn(i)
	}
	return out
}
