package core_test

import (
	"fmt"

	"lapcc/internal/core"
	"lapcc/internal/graph"
	"lapcc/internal/linalg"
)

// ExampleSolveLaplacianWith demonstrates Theorem 1.1 on a small cycle: the
// effective resistance between opposite vertices of C4 is 1 ohm (two
// 2-ohm paths in parallel).
func ExampleSolveLaplacianWith() {
	g, _ := graph.Cycle(4)
	b := linalg.NewVec(4)
	b[0], b[2] = 1, -1
	res, _ := core.SolveLaplacianWith(g, b, 1e-10, core.RunOptions{})
	fmt.Printf("R_eff = %.4f\n", res.X[0]-res.X[2])
	// Output: R_eff = 1.0000
}

// ExampleMaxFlowWith demonstrates Theorem 1.2 on a two-path network.
func ExampleMaxFlowWith() {
	dg := graph.NewDi(4)
	dg.MustAddArc(0, 1, 2, 0)
	dg.MustAddArc(1, 3, 2, 0)
	dg.MustAddArc(0, 2, 3, 0)
	dg.MustAddArc(2, 3, 1, 0)
	res, _ := core.MaxFlowWith(dg, 0, 3, core.RunOptions{})
	fmt.Println("max flow:", res.Value)
	// Output: max flow: 3
}

// ExampleDo demonstrates the request-oriented form of the facade — the same
// shape the serving daemon (cmd/lapccd) accepts as JSON: one Op tag, one
// graph, one Args struct. Theorem 1.3 routes one unit over the cheaper of
// two unit-capacity paths.
func ExampleDo() {
	dg := graph.NewDi(4)
	dg.MustAddArc(0, 1, 1, 9)
	dg.MustAddArc(1, 3, 1, 9)
	dg.MustAddArc(0, 2, 1, 2)
	dg.MustAddArc(2, 3, 1, 2)
	resp, _ := core.Do(core.Request{
		Op:      core.OpMinCostFlow,
		DiGraph: dg,
		Args:    core.Args{Sigma: []int64{1, 0, 0, -1}},
	})
	fmt.Println("min cost:", resp.MinCostFlow.Cost)
	// Output: min cost: 4
}
