package benchgate

import (
	"fmt"
	"time"

	"lapcc/internal/cc"
	"lapcc/internal/transport"
	"lapcc/internal/transport/tcp"
)

// NetTolerance gates the net suite. The gated figure is engine ns-per-round
// through each delivery backend. The local figure is a plain function call;
// the mem figure adds an encode/decode of every message; the tcp figure
// stacks loopback sockets, the chunk/ack barrier, and kernel scheduling on
// top, so its wall time swings far more between runs than any
// microbenchmark — hence a ratio even wider than the serve suite's. The
// suite's real teeth are not the timings at all: the measurement
// cross-checks that all three backends produced bit-identical inbox
// transcripts and fails hard on any divergence.
var NetTolerance = Tolerance{Ns: 5.0}

// The net workload: netN nodes, each sending netFan messages to rotating
// recipients every round for netRounds rounds. Sized so a TCP round moves
// several frames per worker pair without making the gate slow.
const (
	netN      = 48
	netFan    = 4
	netRounds = 32
	netProcs  = 4
)

// netStep returns the deterministic workload step plus a pointer to the
// run's transcript checksum (order-sensitive over every received message).
func netStep() (cc.Step, *uint64) {
	sum := new(uint64)
	step := func(node, round int, inbox []cc.Message, send func(int, ...int64)) bool {
		for _, m := range inbox {
			for _, v := range m.Data {
				*sum = *sum*0x100000001b3 ^ uint64(v) ^ uint64(m.From)<<32
			}
		}
		if round >= netRounds {
			return true
		}
		for k := 1; k <= netFan; k++ {
			send((node+1+(k*7+round)%(netN-1))%netN, int64(node), int64(round<<8|k))
		}
		return false
	}
	return step, sum
}

// measureNet runs the workload through one transport (nil = in-process
// merge) and returns ns-per-round plus the transcript checksum.
func measureNet(tr cc.Transport) (float64, uint64, error) {
	e := cc.NewEngine(netN)
	if tr != nil {
		e.SetTransport(tr)
	}
	step, sum := netStep()
	start := time.Now()
	rounds, err := e.Run(step, netRounds+8)
	if err != nil {
		return 0, 0, err
	}
	if rounds <= 0 {
		return 0, 0, fmt.Errorf("benchgate: net workload ran %d rounds", rounds)
	}
	return float64(time.Since(start).Nanoseconds()) / float64(rounds), *sum, nil
}

// MeasureNetWorkload re-measures BENCH_net.json in-process: the same engine
// workload through the in-process merge, the Mem wire-codec transport, and
// a netProcs-worker TCP loopback clique (in-process worker mode — real
// sockets and frames, no subprocess spawn cost polluting the figure). The
// three transcripts must be bit-identical or the measurement itself fails.
func MeasureNetWorkload() (map[string]Metrics, error) {
	localNs, localSum, err := measureNet(nil)
	if err != nil {
		return nil, fmt.Errorf("benchgate: net/local: %w", err)
	}

	memNs, memSum, err := measureNet(transport.NewMem())
	if err != nil {
		return nil, fmt.Errorf("benchgate: net/mem: %w", err)
	}

	tt, err := tcp.New(tcp.Options{Procs: netProcs})
	if err != nil {
		return nil, fmt.Errorf("benchgate: net/tcp: %w", err)
	}
	tcpNs, tcpSum, err := measureNet(tt)
	cerr := tt.Close()
	if err != nil {
		return nil, fmt.Errorf("benchgate: net/tcp: %w", err)
	}
	if cerr != nil {
		return nil, fmt.Errorf("benchgate: net/tcp close: %w", cerr)
	}

	if memSum != localSum || tcpSum != localSum {
		return nil, fmt.Errorf("benchgate: transcript checksums diverge: local=%x mem=%x tcp=%x",
			localSum, memSum, tcpSum)
	}
	return map[string]Metrics{
		"Net/local": {NsPerOp: localNs},
		"Net/mem":   {NsPerOp: memNs},
		"Net/tcp":   {NsPerOp: tcpNs},
	}, nil
}
