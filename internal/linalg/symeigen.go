package linalg

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Dense symmetric eigensolver (cyclic Jacobi rotations) and the exact
// generalized-eigenvalue oracle built on it. These are test/measurement
// utilities: O(n^3) per sweep, intended for n up to a few hundred, used to
// ground-truth the iterative pencil estimators.

// ErrNotSymmetric reports a matrix that is not (numerically) symmetric.
var ErrNotSymmetric = errors.New("linalg: matrix is not symmetric")

// SymEigen computes all eigenvalues and eigenvectors of a symmetric matrix
// by the cyclic Jacobi method. Eigenvalues are returned ascending;
// column j of the returned matrix is the eigenvector for eigenvalue j.
func (d *Dense) SymEigen() ([]float64, *Dense, error) {
	n := d.n
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if math.Abs(d.At(i, j)-d.At(j, i)) > 1e-9*(1+math.Abs(d.At(i, j))) {
				return nil, nil, fmt.Errorf("%w: entry (%d,%d)", ErrNotSymmetric, i, j)
			}
		}
	}
	a := d.Clone()
	v := NewDense(n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += a.At(i, j) * a.At(i, j)
			}
		}
		if off < 1e-24*(1+frobeniusSq(a)) {
			break
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				apq := a.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := a.At(p, p), a.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				rotate(a, v, p, q, c, s)
			}
		}
	}
	type pair struct {
		lam float64
		col int
	}
	pairs := make([]pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = pair{lam: a.At(i, i), col: i}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].lam < pairs[j].lam })
	lams := make([]float64, n)
	vecs := NewDense(n)
	for j, p := range pairs {
		lams[j] = p.lam
		for i := 0; i < n; i++ {
			vecs.Set(i, j, v.At(i, p.col))
		}
	}
	return lams, vecs, nil
}

func frobeniusSq(d *Dense) float64 {
	var s float64
	for _, x := range d.a {
		s += x * x
	}
	return s
}

// rotate applies the Jacobi rotation J(p,q,c,s) to a (two-sided) and
// accumulates it into v (one-sided).
func rotate(a, v *Dense, p, q int, c, s float64) {
	n := a.n
	for k := 0; k < n; k++ {
		akp, akq := a.At(k, p), a.At(k, q)
		a.Set(k, p, c*akp-s*akq)
		a.Set(k, q, s*akp+c*akq)
	}
	for k := 0; k < n; k++ {
		apk, aqk := a.At(p, k), a.At(q, k)
		a.Set(p, k, c*apk-s*aqk)
		a.Set(q, k, s*apk+c*aqk)
	}
	for k := 0; k < n; k++ {
		vkp, vkq := v.At(k, p), v.At(k, q)
		v.Set(k, p, c*vkp-s*vkq)
		v.Set(k, q, s*vkp+c*vkq)
	}
}

// PencilEigenDense returns ALL generalized eigenvalues of the pencil
// (A, B) restricted to range(B), exactly (up to dense eigensolver
// accuracy): eigendecompose B, drop its (near-)null directions, whiten,
// and eigendecompose the projected A. This is the ground-truth oracle the
// iterative estimators are tested against.
func PencilEigenDense(a, b *Dense, nullTol float64) ([]float64, error) {
	if a.Dim() != b.Dim() {
		return nil, fmt.Errorf("linalg: pencil dimensions %d and %d differ", a.Dim(), b.Dim())
	}
	n := a.Dim()
	bLams, bVecs, err := b.SymEigen()
	if err != nil {
		return nil, fmt.Errorf("linalg: pencil B eigen: %w", err)
	}
	maxLam := bLams[len(bLams)-1]
	if maxLam <= 0 {
		return nil, fmt.Errorf("linalg: B has no positive spectrum")
	}
	if nullTol <= 0 {
		nullTol = 1e-10
	}
	// Whitening basis W: columns q_i / sqrt(lam_i) over the kept spectrum.
	var keep []int
	for i, lam := range bLams {
		if lam > nullTol*maxLam {
			keep = append(keep, i)
		}
	}
	r := len(keep)
	if r == 0 {
		return nil, fmt.Errorf("linalg: B numerically zero")
	}
	w := make([][]float64, r)
	for j, idx := range keep {
		col := make([]float64, n)
		inv := 1 / math.Sqrt(bLams[idx])
		for i := 0; i < n; i++ {
			col[i] = bVecs.At(i, idx) * inv
		}
		w[j] = col
	}
	// S = W^T A W (r x r), symmetric.
	s := NewDense(r)
	aw := make([][]float64, r)
	for j := 0; j < r; j++ {
		av := NewVec(n)
		a.Apply(av, w[j])
		aw[j] = av
	}
	for i := 0; i < r; i++ {
		for j := i; j < r; j++ {
			var dot float64
			for k := 0; k < n; k++ {
				dot += w[i][k] * aw[j][k]
			}
			s.Set(i, j, dot)
			s.Set(j, i, dot)
		}
	}
	lams, _, err := s.SymEigen()
	if err != nil {
		return nil, fmt.Errorf("linalg: pencil S eigen: %w", err)
	}
	return lams, nil
}
