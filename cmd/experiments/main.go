// Command experiments regenerates every experiment table in EXPERIMENTS.md
// (E1-E10), reproducing the quantitative claims of the paper's theorems as
// scaling measurements plus the simulator's own instrumentation profile
// (E10). See DESIGN.md section 5 for the experiment index.
//
//	go run ./cmd/experiments            # all experiments
//	go run ./cmd/experiments -run E3,E5 # a subset
//	go run ./cmd/experiments -quick     # smaller sweeps
//	go run ./cmd/experiments -trace out.json  # traced stack profile only
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lapcc/internal/experiments"
	"lapcc/internal/trace"
)

func main() {
	runFlag := flag.String("run", "all", "comma-separated experiment ids (E1..E13) or 'all'")
	quick := flag.Bool("quick", false, "smaller parameter sweeps")
	trOut := flag.String("trace", "", "run one traced solve per algorithm and write a Chrome trace_event file")
	trEv := flag.String("trace-events", "", "like -trace but writing the deterministic JSONL event stream")
	flag.Parse()

	if *trOut != "" || *trEv != "" {
		tr := trace.New()
		if err := experiments.TraceProfile(os.Stdout, *quick, tr); err != nil {
			fmt.Fprintln(os.Stderr, "trace profile failed:", err)
			os.Exit(1)
		}
		if err := tr.WriteFiles(*trOut, *trEv); err != nil {
			fmt.Fprintln(os.Stderr, "trace export failed:", err)
			os.Exit(1)
		}
		for _, p := range []string{*trOut, *trEv} {
			if p != "" {
				fmt.Printf("trace: wrote %s\n", p)
			}
		}
		return
	}

	want := map[string]bool{}
	if *runFlag == "all" {
		for _, e := range experiments.All() {
			want[e.ID] = true
		}
	} else {
		for _, id := range strings.Split(*runFlag, ",") {
			want[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}
	for _, e := range experiments.All() {
		if !want[e.ID] {
			continue
		}
		fmt.Printf("\n================================================================\n%s\n================================================================\n", e.Title)
		if err := e.Run(os.Stdout, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
	}
}
