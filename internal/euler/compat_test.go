package euler

import (
	"testing"

	"lapcc/internal/graph"
	"lapcc/internal/rounds"
)

// TestDeprecatedWrappersMatchOrient pins the deprecated pre-Options entry
// points to the new API: same orientation, same ledger accounting.
func TestDeprecatedWrappersMatchOrient(t *testing.T) {
	g, err := graph.RandomEulerian(64, 6, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	newLed := rounds.New()
	want, wantStats, err := Orient(g, nil, Options{Ledger: newLed})
	if err != nil {
		t.Fatal(err)
	}

	oldLed := rounds.New()
	got, gotStats, err := OrientLedger(g, nil, oldLed)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("orientation lengths differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("edge %d oriented differently via OrientLedger", i)
		}
	}
	if gotStats.Iterations != wantStats.Iterations || oldLed.Total() != newLed.Total() {
		t.Fatalf("OrientLedger accounting differs: %d iters / %d rounds vs %d / %d",
			gotStats.Iterations, oldLed.Total(), wantStats.Iterations, newLed.Total())
	}

	withLed := rounds.New()
	got2, _, err := OrientWith(g, nil, withLed, Options{Mode: Deterministic})
	if err != nil {
		t.Fatal(err)
	}
	for i := range got2 {
		if got2[i] != want[i] {
			t.Fatalf("edge %d oriented differently via OrientWith", i)
		}
	}
	if v := CheckOrientation(g, got2); v != -1 {
		t.Fatalf("OrientWith produced an unbalanced orientation at vertex %d", v)
	}
	if withLed.Total() != newLed.Total() {
		t.Fatalf("OrientWith rounds %d, want %d", withLed.Total(), newLed.Total())
	}
}

// TestOrientStatsEmbedSharedAccounting checks the rounds.Stats embedding:
// the measured/charged split of the call window must match the ledger.
func TestOrientStatsEmbedSharedAccounting(t *testing.T) {
	g, err := graph.RandomEulerian(64, 6, 3, 13)
	if err != nil {
		t.Fatal(err)
	}
	led := rounds.New()
	_, st, err := Orient(g, nil, Options{Ledger: led})
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalRounds() != led.Total() {
		t.Fatalf("stats total %d, ledger total %d", st.TotalRounds(), led.Total())
	}
	if st.MeasuredRounds == 0 {
		t.Fatal("orientation measured no rounds")
	}
	if st.Spans != 0 {
		t.Fatalf("untraced run reports %d spans", st.Spans)
	}
}
