package sparsify

import (
	"fmt"
	"math"

	"lapcc/internal/graph"
	"lapcc/internal/rounds"
)

// Chain is the build-once/reweight-many session form of Sparsify. It
// separates the *structure* of the CGLN+20 chain — which edges fall in which
// binary weight class, the per-class expander-decomposition levels, and the
// product-demand skeletons emitted for each certified part — from the edge
// *weights*. The structure is a pure function of (n, per-class edge-ID
// sets): Sparsify never reads a weight except to pick the class index and
// the per-class scale 2^ci. Reweight exploits that:
//
//   - if the class partition is unchanged, a fresh rebuild would be
//     bit-identical, so the existing sparsifier is reused exactly;
//   - if the partition changed but the multiplicative weight envelope since
//     the last reference point is small, the sandwich
//     a·L_G ≼ L_G' ≼ b·L_G (with b/a = envelope) bounds the drifted
//     approximation factor by alphaRef·sqrt(envelope), so the structure is
//     still a certified preconditioner and is reused without measurement;
//   - past the envelope bound, α is re-measured with the Lanczos pencil
//     estimate; only when the measured α exceeds MaxAlpha does the chain
//     fall back to a full rebuild.
//
// Reuse never changes *charged* rounds, only wall clock: every reuse
// replays the recorded build schedule (one CS20 decomposition charge plus
// one broadcast round per level), exactly what a fresh build with the same
// level structure would put on the ledger. See DESIGN.md §8.
type Chain struct {
	g    *graph.Graph // owned working copy; reweighted in place
	res  *Result
	opts ChainOptions

	classRef []int     // per-edge weight class at the last build
	wRef     []float64 // weights at the last α reference point
	alphaRef float64   // α measured at the last reference point (0 = not yet)
	levels   int       // recorded charge schedule: levels of the last build
	n        int

	stats    ChainStats
	mirrored ChainStats // stats already mirrored into the metrics registry
}

// ChainOptions configures NewChain.
type ChainOptions struct {
	// Sparsify configures the underlying builds (its Ledger and Trace are
	// the chain's ledger and tracer).
	Sparsify Options
	// MaxAlpha is the α bound past which Reweight abandons the current
	// structure and rebuilds (default 64; kappa = α² stays well under the
	// solver's doubling cap).
	MaxAlpha float64
	// DriftBound is the cheap reuse certificate: while the multiplicative
	// weight envelope max_i(w_i/wRef_i) / min_i(w_i/wRef_i) stays at or
	// below it, the drifted α is bounded by alphaRef·sqrt(DriftBound)
	// without any measurement (default 16).
	DriftBound float64
	// LanczosK is the Krylov dimension of the α re-measurement (default 40).
	LanczosK int
	// ExactOnly restricts Reweight to tier-1 reuse: the structure is kept
	// only when the class partition is unchanged — where a fresh rebuild
	// would be bit-identical — and every other reweight rebuilds. This
	// trades the drift-certified reuse tiers for a hard guarantee that the
	// chain's sparsifier always equals what a cold build on the current
	// weights would produce, which the serving layer's differential
	// contract (pooled responses bit-identical to fresh solves) requires.
	ExactOnly bool
}

func (o *ChainOptions) defaults() {
	if o.MaxAlpha == 0 {
		o.MaxAlpha = 64
	}
	if o.DriftBound == 0 {
		o.DriftBound = 16
	}
	if o.LanczosK == 0 {
		o.LanczosK = 40
	}
}

// ChainStats counts what Reweight did over the chain's lifetime.
type ChainStats struct {
	// Reweights counts Reweight calls.
	Reweights int
	// ExactReuses counts reweights with an unchanged class partition
	// (bit-identical rebuild avoided).
	ExactReuses int
	// DriftReuses counts reweights served under the envelope certificate.
	DriftReuses int
	// Remeasures counts Lanczos α re-measurements.
	Remeasures int
	// Rebuilds counts full rebuilds (the initial build is not counted).
	Rebuilds int
}

// NewChain builds the sparsifier chain for g and records the structure
// needed for reuse. The chain takes ownership of g: the caller must not
// mutate it afterwards and must route all weight changes through Reweight.
func NewChain(g *graph.Graph, opts ChainOptions) (*Chain, error) {
	opts.defaults()
	c := &Chain{g: g, opts: opts, n: g.N()}
	if err := c.build(); err != nil {
		return nil, err
	}
	return c, nil
}

// build runs a fresh Sparsify on the current weights and resets every
// reference the reuse policy diffs against.
func (c *Chain) build() error {
	res, err := Sparsify(c.g, c.opts.Sparsify)
	if err != nil {
		return err
	}
	c.res = res
	c.levels = res.Levels
	c.classRef = c.classes()
	c.wRef = c.g.Weights()
	c.alphaRef = 0 // lazily measured, only when the envelope certificate trips
	return nil
}

// classes returns the binary weight class per edge, in edge order — the
// exact quantity Sparsify partitions by.
func (c *Chain) classes() []int {
	cl := make([]int, c.g.M())
	for id, e := range c.g.Edges() {
		cl[id] = int(math.Floor(math.Log2(e.W)))
	}
	return cl
}

// H returns the current sparsifier. The caller must not modify it.
func (c *Chain) H() *graph.Graph { return c.res.H }

// Result returns the current build's Result (sparsifier plus level/part
// counters). The caller must not modify it.
func (c *Chain) Result() *Result { return c.res }

// Graph returns the chain's working graph, carrying the current weights.
// The caller must not mutate it directly; use Reweight.
func (c *Chain) Graph() *graph.Graph { return c.g }

// Stats returns the lifetime reuse counters.
func (c *Chain) Stats() ChainStats { return c.stats }

// SetBudget replaces the budget consulted by subsequent rebuilds, binding it
// to the chain's ledger so its round limit meters from the current totals. A
// nil budget removes the limit. The serving layer uses this to apply
// per-request admission budgets to pooled chains.
func (c *Chain) SetBudget(b *rounds.Budget) {
	b.Bind(c.opts.Sparsify.Ledger)
	c.opts.Sparsify.Budget = b
}

// mirrorStats pushes the counter increments since the last mirror into the
// chain's metrics registry (the reweight-vs-rebuild hit counters of the
// live exposition). No-op without a registry.
func (c *Chain) mirrorStats() {
	reg := c.opts.Sparsify.Metrics
	if reg == nil {
		return
	}
	help := "Chain reweight decisions by outcome."
	reg.Counter("lapcc_sparsify_chain_reweights_total", "Chain.Reweight calls.").Add(int64(c.stats.Reweights - c.mirrored.Reweights))
	reg.Counter("lapcc_sparsify_chain_reuse_total", help, "outcome", "exact").Add(int64(c.stats.ExactReuses - c.mirrored.ExactReuses))
	reg.Counter("lapcc_sparsify_chain_reuse_total", help, "outcome", "drift").Add(int64(c.stats.DriftReuses - c.mirrored.DriftReuses))
	reg.Counter("lapcc_sparsify_chain_remeasures_total", "Lanczos alpha re-measurements.").Add(int64(c.stats.Remeasures - c.mirrored.Remeasures))
	reg.Counter("lapcc_sparsify_chain_rebuilds_total", "Full sparsifier rebuilds forced by alpha drift.").Add(int64(c.stats.Rebuilds - c.mirrored.Rebuilds))
	c.mirrored = c.stats
}

// Alpha returns the last measured approximation factor, or 0 when no
// measurement has been needed yet (reuse so far certified structurally).
func (c *Chain) Alpha() float64 { return c.alphaRef }

// replayCharges puts the recorded build schedule on the ledger: per level,
// one CS20 decomposition charge plus the one-round part-id broadcast —
// exactly the Adds a fresh build with this level structure performs, so a
// reused solve is indistinguishable from a fresh one in charged rounds.
func (c *Chain) replayCharges() {
	led := c.opts.Sparsify.Ledger
	if led == nil {
		return
	}
	// Mirror Options.defaults: Eps/Gamma as the build used them.
	o := c.opts.Sparsify
	o.defaults(c.g.M())
	for lv := 0; lv < c.levels; lv++ {
		led.Add("sparsify-decomp", rounds.Charged,
			rounds.ExpanderDecompRounds(c.n, o.Eps, o.Gamma), rounds.CiteCS20)
		led.Add("sparsify-bcast", rounds.Measured, 1, "all-to-all broadcast, 1 round")
	}
}

// envelope returns max_i(w_i/wRef_i) / min_i(w_i/wRef_i) over the current
// weights — the multiplicative drift since the last α reference point.
func (c *Chain) envelope() float64 {
	lo, hi := math.Inf(1), 0.0
	for id, e := range c.g.Edges() {
		r := e.W / c.wRef[id]
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	if lo <= 0 || hi == 0 {
		return math.Inf(1)
	}
	return hi / lo
}

// Reweight updates the chain to new edge weights (indexed by edge id; all
// must be positive and finite) and decides, per the α-drift policy above,
// whether the existing structure is reused or rebuilt. It returns true when
// the structure was reused, false when it was rebuilt.
func (c *Chain) Reweight(w []float64) (bool, error) {
	if len(w) != c.g.M() {
		return false, fmt.Errorf("sparsify: reweight with %d weights for %d edges", len(w), c.g.M())
	}
	c.stats.Reweights++
	defer c.mirrorStats()
	tr := c.opts.Sparsify.Trace
	sp := tr.Startf("reweight-%d", c.stats.Reweights)
	defer sp.End()

	if err := c.g.SetWeights(w); err != nil {
		return false, fmt.Errorf("sparsify: reweight: %w", err)
	}
	samePartition := true
	for id := range w {
		if int(math.Floor(math.Log2(w[id]))) != c.classRef[id] {
			samePartition = false
			break
		}
	}

	// Tier 1: identical class partition. Sparsify's structure is a pure
	// function of the partition, so a fresh rebuild would be bit-identical;
	// reuse is exact. (Within a class, weights move by < 2x, so α moves by
	// < 2x too — no measurement needed.)
	if samePartition {
		c.stats.ExactReuses++
		c.replayCharges()
		return true, nil
	}

	// ExactOnly forgoes tiers 2 and 3: any partition change rebuilds, so the
	// sparsifier never drifts from what a cold build would produce.
	if c.opts.ExactOnly {
		rsp := tr.Startf("rebuild-%d", c.stats.Rebuilds+1)
		defer rsp.End()
		c.stats.Rebuilds++
		if err := c.build(); err != nil {
			return false, fmt.Errorf("sparsify: rebuild after reweight: %w", err)
		}
		return false, nil
	}

	// Tier 2: partition changed, but the weight envelope since the last
	// reference point still certifies α ≤ alphaRef·sqrt(envelope) (or, with
	// no measurement yet, a bounded multiple of the build quality).
	env := c.envelope()
	base := c.alphaRef
	if base == 0 {
		base = 1
	}
	if env <= c.opts.DriftBound && base*math.Sqrt(env) <= c.opts.MaxAlpha {
		c.stats.DriftReuses++
		c.replayCharges()
		return true, nil
	}

	// Tier 3: the cheap certificate tripped — re-measure α against the
	// current weights with the Lanczos pencil estimate, and keep the
	// structure only if it is still a MaxAlpha-quality preconditioner.
	if c.g.IsConnected() && c.res.H.IsConnected() {
		c.stats.Remeasures++
		alpha, err := MeasureAlphaLanczos(c.g, c.res.H, c.opts.LanczosK)
		if err == nil && alpha <= c.opts.MaxAlpha {
			c.alphaRef = alpha
			c.wRef = c.g.Weights()
			c.stats.DriftReuses++
			c.replayCharges()
			return true, nil
		}
	}

	// Rebuild: α drifted past the bound (or could not be certified).
	rsp := tr.Startf("rebuild-%d", c.stats.Rebuilds+1)
	defer rsp.End()
	c.stats.Rebuilds++
	if err := c.build(); err != nil {
		return false, fmt.Errorf("sparsify: rebuild after reweight: %w", err)
	}
	return false, nil
}
