// Package benchgate implements the perf-regression gate behind
// `make bench-gate`: it loads the checked-in BENCH_*.json baselines,
// re-measures the same suites (re-running `go test -bench` for the timing
// suites, re-executing the fault-differential workloads in-process for the
// round suite), writes the fresh results to BENCH_<suite>.new.json, and
// diffs fresh against baseline under per-metric tolerances.
//
// Timing metrics (ns/op, B/op, allocs/op) are host-dependent and noisy, so
// they gate on generous ratios (see DefaultTolerance). Round counts are
// model quantities — deterministic per plan seed and host-independent — so
// they gate exactly: any drift is a real behavioural change, not noise.
package benchgate

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Metrics is one benchmark's recorded figures, matching the per-benchmark
// objects of BENCH_engine.json and BENCH_solver.json.
type Metrics struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Workload is one fault-differential workload's recorded round counts,
// matching the per-workload objects of BENCH_faults.json.
type Workload struct {
	Instance     string  `json:"instance"`
	CleanRounds  int64   `json:"clean_rounds"`
	FaultyRounds int64   `json:"faulty_rounds"`
	OverheadPct  float64 `json:"overhead_pct"`
}

// File mirrors the BENCH_*.json schema. Fields the gate does not interpret
// (host, headline) pass through as raw JSON so a refreshed file keeps them.
type File struct {
	Description string              `json:"description,omitempty"`
	Recorded    string              `json:"recorded,omitempty"`
	Host        json.RawMessage     `json:"host,omitempty"`
	Command     string              `json:"command,omitempty"`
	DropRate    float64             `json:"drop_rate,omitempty"`
	Benchmarks  map[string]Metrics  `json:"benchmarks,omitempty"`
	Workloads   map[string]Workload `json:"workloads,omitempty"`
	Headline    json.RawMessage     `json:"headline,omitempty"`
	// TraceOverhead is the serve suite's informational traced/untraced
	// mean-latency ratio (loadgen -trace-sample); never gated.
	TraceOverhead float64 `json:"trace_overhead,omitempty"`
	Notes         string  `json:"notes,omitempty"`
}

// Load reads and decodes one BENCH_*.json baseline.
func Load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

// WriteFile encodes f to path with the same two-space indentation the
// checked-in baselines use, so a fresh file diffs cleanly against one.
func (f *File) WriteFile(path string) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// benchLine matches one result line of `go test -bench -benchmem` output:
//
//	BenchmarkRoute/n=64-8   20000   115499 ns/op   99588 B/op   257 allocs/op
//
// The B/op and allocs/op columns are optional (absent without -benchmem),
// and the -N GOMAXPROCS suffix is absent when GOMAXPROCS=1.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S*)\s+\d+\s+([0-9.]+) ns/op(?:\s+([0-9.]+) B/op)?(?:\s+([0-9.]+) allocs/op)?`)

var procsSuffix = regexp.MustCompile(`-(\d+)$`)

// ParseBenchOutput extracts the per-benchmark metrics from `go test -bench`
// text output. Benchmark names are normalised by stripping the trailing
// GOMAXPROCS suffix (-8 etc.) so they match the host-independent names the
// baselines record. Non-benchmark lines (PASS, ok, goos headers) are
// ignored; an input with no benchmark lines is an error.
//
// Stripping is only sound for suites whose figures do not depend on
// GOMAXPROCS. The scaling suite's do — use ParseBenchOutputProcs with
// keepProcs=true there, which records the suffix instead of discarding it.
func ParseBenchOutput(r io.Reader) (map[string]Metrics, error) {
	return ParseBenchOutputProcs(r, false)
}

// ParseBenchOutputProcs is ParseBenchOutput with explicit control over the
// GOMAXPROCS suffix. With keepProcs=true the trailing -N is rewritten into
// an "@procs=N" tag (absent suffix means GOMAXPROCS=1, tagged "@procs=1"),
// so results measured at different GOMAXPROCS get distinct names and are
// never diffed against each other. The worker-scaling suite needs this: its
// ns/op figures move with the processor count by design, and the blind
// strip would compare a GOMAXPROCS=4 run against a GOMAXPROCS=1 baseline
// and call the speedup (or the lack of one) a regression.
func ParseBenchOutputProcs(r io.Reader, keepProcs bool) (map[string]Metrics, error) {
	out := map[string]Metrics{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name := m[1]
		if keepProcs {
			procs := "1"
			if sm := procsSuffix.FindStringSubmatch(name); sm != nil {
				procs = sm[1]
				name = name[:len(name)-len(sm[0])]
			}
			name += "@procs=" + procs
		} else {
			name = procsSuffix.ReplaceAllString(name, "")
		}
		var met Metrics
		met.NsPerOp, _ = strconv.ParseFloat(m[2], 64)
		if m[3] != "" {
			met.BytesPerOp, _ = strconv.ParseFloat(m[3], 64)
		}
		if m[4] != "" {
			met.AllocsPerOp, _ = strconv.ParseFloat(m[4], 64)
		}
		out[name] = met
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("benchgate: no benchmark result lines in input")
	}
	return out, nil
}

// procsTag returns the "@procs=N" suffix of a keep-procs benchmark name
// ("" when the name carries none).
func procsTag(name string) string {
	if i := strings.LastIndex(name, "@procs="); i >= 0 {
		return name[i:]
	}
	return ""
}

// FilterByProcs returns the subset of baseline entries whose @procs tag is
// represented in the fresh results. A keep-procs baseline recorded on a
// GOMAXPROCS=8 host carries entries no GOMAXPROCS=1 gate run can reproduce;
// those are incomparable rather than missing, so the gate compares only the
// procs levels both sides measured. Entries without a tag always pass
// through.
func FilterByProcs(baseline, fresh map[string]Metrics) map[string]Metrics {
	have := map[string]bool{}
	for name := range fresh {
		have[procsTag(name)] = true
	}
	out := make(map[string]Metrics, len(baseline))
	for name, m := range baseline {
		if tag := procsTag(name); tag == "" || have[tag] {
			out[name] = m
		}
	}
	return out
}

// Tolerance holds the per-metric regression thresholds as fresh/baseline
// ratios: a fresh value above baseline*ratio is a regression. Improvements
// (fresh below baseline) never fail the gate.
type Tolerance struct {
	// Ns gates ns/op. Wall time is the noisiest metric (CPU contention,
	// frequency scaling), so its ratio is the most generous.
	Ns float64
	// Bytes gates B/op. Allocation volume jitters with pool hit rates but
	// far less than wall time.
	Bytes float64
	// Allocs gates allocs/op, the most stable timing-suite metric: a
	// steady-state hot path allocating more is almost always a real leak
	// of allocations into the loop, not noise.
	Allocs float64
}

// DefaultTolerance is the gate's standard thresholds, tuned so an
// unmodified tree passes on a noisy shared host while an accidental
// O(rounds) allocation or a 2x slowdown still fails.
var DefaultTolerance = Tolerance{Ns: 1.75, Bytes: 1.50, Allocs: 1.25}

// Regression is one gate failure: a metric that moved past its threshold,
// or a baseline entry the fresh run no longer produced.
type Regression struct {
	Name     string // benchmark or workload name
	Metric   string // "ns/op", "B/op", "allocs/op", "clean_rounds", ...
	Baseline float64
	Fresh    float64
	Limit    float64 // the threshold Fresh had to stay within
	Missing  bool    // baseline entry absent from the fresh run
}

func (r Regression) String() string {
	if r.Missing {
		return fmt.Sprintf("%s: in baseline but missing from fresh run", r.Name)
	}
	return fmt.Sprintf("%s %s: %.0f -> %.0f (limit %.0f)",
		r.Name, r.Metric, r.Baseline, r.Fresh, r.Limit)
}

// Diff compares fresh benchmark metrics against the baseline under tol and
// returns the regressions, sorted by name for deterministic output. Every
// baseline benchmark must appear in the fresh run; fresh benchmarks absent
// from the baseline (newly added) are ignored. A zero baseline value gates
// nothing for that metric — there is no meaningful ratio.
func Diff(baseline, fresh map[string]Metrics, tol Tolerance) []Regression {
	var regs []Regression
	for name, base := range baseline {
		got, ok := fresh[name]
		if !ok {
			regs = append(regs, Regression{Name: name, Missing: true})
			continue
		}
		check := func(metric string, b, f, ratio float64) {
			if b <= 0 || ratio <= 0 {
				return
			}
			if limit := b * ratio; f > limit {
				regs = append(regs, Regression{
					Name: name, Metric: metric, Baseline: b, Fresh: f, Limit: limit,
				})
			}
		}
		check("ns/op", base.NsPerOp, got.NsPerOp, tol.Ns)
		check("B/op", base.BytesPerOp, got.BytesPerOp, tol.Bytes)
		check("allocs/op", base.AllocsPerOp, got.AllocsPerOp, tol.Allocs)
	}
	sortRegressions(regs)
	return regs
}

// DiffWorkloads compares fresh fault-differential round counts against the
// baseline. Rounds are deterministic model quantities, so the comparison is
// exact: any difference in clean or faulty rounds is a regression (or an
// intentional change that must update the baseline).
func DiffWorkloads(baseline, fresh map[string]Workload) []Regression {
	var regs []Regression
	for name, base := range baseline {
		got, ok := fresh[name]
		if !ok {
			regs = append(regs, Regression{Name: name, Missing: true})
			continue
		}
		if got.CleanRounds != base.CleanRounds {
			regs = append(regs, Regression{
				Name: name, Metric: "clean_rounds",
				Baseline: float64(base.CleanRounds), Fresh: float64(got.CleanRounds),
				Limit: float64(base.CleanRounds),
			})
		}
		if got.FaultyRounds != base.FaultyRounds {
			regs = append(regs, Regression{
				Name: name, Metric: "faulty_rounds",
				Baseline: float64(base.FaultyRounds), Fresh: float64(got.FaultyRounds),
				Limit: float64(base.FaultyRounds),
			})
		}
	}
	sortRegressions(regs)
	return regs
}

func sortRegressions(regs []Regression) {
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].Name != regs[j].Name {
			return regs[i].Name < regs[j].Name
		}
		return regs[i].Metric < regs[j].Metric
	})
}
