package mcmf

import (
	"errors"
	"fmt"
	"math"

	"lapcc/internal/cc"
	"lapcc/internal/electrical"
	"lapcc/internal/flowround"
	"lapcc/internal/graph"
	"lapcc/internal/linalg"
	"lapcc/internal/metrics"
	"lapcc/internal/rounds"
	"lapcc/internal/shortestpath"
	"lapcc/internal/sparsify"
	"lapcc/internal/trace"
)

// Options configures the Theorem 1.3 pipeline.
type Options struct {
	// Ledger, if non-nil, receives round costs.
	Ledger *rounds.Ledger
	// BudgetFactor scales the m^{3/7} polylog W Progress budget
	// (default 2; the paper's c_T = 1200*sqrt(3) log^{4/3} W constant is a
	// proof artifact).
	BudgetFactor float64
	// SolveEps is the per-iteration Laplacian solve precision
	// (default 1e-10).
	SolveEps float64
	// FreshBuild restores the pre-session behavior: rebuild the support
	// graph and Laplacian from scratch on every solve instead of
	// reweighting the build-once session. Kept as the benchmark baseline
	// and the differential-test oracle; charged rounds are identical
	// either way.
	FreshBuild bool
	// DisableIPM skips Progress entirely (ablation: Repairing alone from
	// the rounded half-integral start).
	DisableIPM bool
	// Trace, if non-nil, receives hierarchical span and cost events for
	// this call (see internal/trace); a nil tracer records nothing and
	// costs nothing.
	Trace *trace.Tracer
	// Faults, if non-nil, subjects every network primitive of the
	// flow-rounding cascade to the given fault plan, with delivery
	// restored by the reliable retransmission layer. The flow is
	// bit-identical to a fault-free run; only the round cost grows.
	Faults *cc.FaultPlan
	// Transport, if non-nil, physically carries every network primitive of
	// the flow-rounding cascade through the given delivery backend (see
	// cc.Transport); nil keeps the in-process path. The flow is
	// bit-identical either way.
	Transport cc.Transport
	// Budget, if non-nil, bounds the run: it is checked at every IPM
	// iteration and propagated to the electrical session and the rounding
	// cascade. Exhaustion aborts with an error unwrapping to
	// rounds.ErrBudgetExceeded carrying the partial stats.
	Budget *rounds.Budget
	// Metrics, if non-nil, receives live counters for the run (Progress
	// iterations, repair augmentations, cancelled cycles) and a mirror of
	// the ledger's cost stream, and is propagated to every stage of the
	// pipeline. A nil registry records nothing and costs nothing.
	Metrics *metrics.Registry
	// Workers sets the worker count for the run's numerical kernels — the
	// predictor/corrector electrical solves and the charge-calibration
	// sparsifier build (0 = GOMAXPROCS, 1 = sequential). The IPM's path
	// iterations are data-dependent and stay sequential; Workers
	// parallelizes inside each solve. The flow is bit-identical at any
	// worker count.
	Workers int
}

func (o *Options) defaults() {
	if o.BudgetFactor == 0 {
		o.BudgetFactor = 2
	}
	if o.SolveEps == 0 {
		o.SolveEps = 1e-10
	}
	o.Budget.BindIfUnbound(o.Ledger)
}

// Result reports a Theorem 1.3 run.
type Result struct {
	// Stats carries the shared round accounting of the call.
	rounds.Stats
	// Flow is the optimal per-arc 0/1 flow on the input digraph.
	Flow []int64
	// Cost is the exact minimum cost.
	Cost int64
	// ProgressIterations counts Progress (Algorithm 9) calls.
	ProgressIterations int
	// Perturbations counts Perturbation (Algorithm 8) calls.
	Perturbations int
	// RepairAugmentations counts the shortest augmenting paths of
	// Repairing (Algorithm 10); the paper bounds this by O-tilde(m^{3/7}).
	RepairAugmentations int
	// CyclesCancelled counts residual negative-cycle cancellations needed
	// for exactness after Repairing (0 when the IPM did its job; nonzero
	// values expose shortfalls rather than hiding them).
	CyclesCancelled int
	// FinalMu is the mean complementarity f*s at IPM exit.
	FinalMu float64
}

// MinCostFlow routes the demand vector sigma on the unit-capacity digraph
// dg at minimum cost, following the Theorem 1.3 pipeline. See DESIGN.md for
// the substitutions relative to CMSV17.
func MinCostFlow(dg *graph.DiGraph, sigma []int64, opts Options) (*Result, error) {
	opts.defaults()
	opts.Metrics.MirrorLedger(opts.Ledger)
	snap := rounds.Snap(opts.Ledger)
	spansBefore := opts.Trace.SpanCount()
	res, err := minCostFlowImpl(dg, sigma, opts)
	if res != nil {
		res.Stats = snap.Stats()
		res.Spans = opts.Trace.SpanCount() - spansBefore
		if reg := opts.Metrics; reg != nil {
			reg.Counter("lapcc_mcmf_runs_total", "MinCostFlow calls.").Inc()
			reg.Counter("lapcc_mcmf_progress_iterations_total", "Progress (Algorithm 9) iterations.").Add(int64(res.ProgressIterations))
			reg.Counter("lapcc_mcmf_perturbations_total", "Perturbation (Algorithm 8) calls.").Add(int64(res.Perturbations))
			reg.Counter("lapcc_mcmf_repair_augmentations_total", "Repairing shortest augmenting paths.").Add(int64(res.RepairAugmentations))
			reg.Counter("lapcc_mcmf_cycles_cancelled_total", "Residual negative-cycle cancellations.").Add(int64(res.CyclesCancelled))
		}
	}
	return res, err
}

func minCostFlowImpl(dg *graph.DiGraph, sigma []int64, opts Options) (*Result, error) {
	l, err := newLifted(dg, sigma)
	if err != nil {
		return nil, err
	}
	tr := opts.Trace
	tr.Attach(opts.Ledger)
	sp := tr.Start("mcmf")
	defer sp.End()
	res := &Result{}
	ipm := newCMSVState(l, opts)
	if !opts.DisableIPM {
		if err := ipm.run(res); err != nil {
			return nil, err
		}
	}
	rsp := tr.Start("round")
	match, err := ipm.roundToMatching(res)
	rsp.End()
	if err != nil {
		return nil, err
	}
	psp := tr.Start("repair")
	err = ipm.repair(match, res)
	psp.End()
	if err != nil {
		return nil, err
	}
	flow, err := l.decode(match)
	if err != nil {
		return nil, err
	}
	res.Flow = flow
	res.Cost, err = CheckRouting(dg, flow, sigma)
	if err != nil {
		return nil, fmt.Errorf("mcmf: internal: decoded flow invalid: %w", err)
	}
	return res, nil
}

// cmsvState is the IPM iterate: per bipartite edge, a primal value f in
// (0,1), a slack s > 0, and a weight nu >= 1; plus the dual y per vertex
// (only Perturbation and Repairing touch y, as in the paper).
type cmsvState struct {
	l    *lifted
	opts Options
	f    []float64
	s    []float64
	nu   []float64
	y    []float64
	rho  []float64
	eta  float64

	alphaRef float64 // measured sparsifier alpha for charged solve rounds
	chargeOK bool

	// sess is the build-once/reweight-per-solve electrical session over the
	// v0-preconditioned bipartite support. The topology is fixed for the
	// whole IPM: the v0 star covers exactly the P vertices with a(v) > 0,
	// and a(v) sums nu weights, which never decrease — so membership at the
	// first solve is membership forever. Nil under FreshBuild.
	sess  *electrical.Session
	wFull []float64 // scratch: bipartite weights followed by v0 weights
}

func newCMSVState(l *lifted, opts Options) *cmsvState {
	e := l.edges()
	st := &cmsvState{
		l:    l,
		opts: opts,
		f:    make([]float64, e),
		s:    make([]float64, e),
		nu:   make([]float64, e),
		y:    make([]float64, l.nP+l.nQ),
		rho:  make([]float64, e),
		eta:  1.0 / 14.0,
	}
	// Initialization (Algorithm 7, lines 11-13).
	cInf := 1.0
	for i := 0; i < e; i++ {
		if c := float64(l.edgeCost(i)); c > cInf {
			cInf = c
		}
	}
	for u := 0; u < l.nP; u++ {
		st.y[u] = cInf
	}
	for i := 0; i < e; i++ {
		st.f[i] = 0.5
		u, q := l.ends(i)
		st.s[i] = float64(l.edgeCost(i)) + st.y[u] - st.y[q]
		st.nu[i] = st.s[i] / (2 * cInf)
	}
	return st
}

// supportGraph is the bipartite graph weighted by conductances w; with
// precon it gains the v0 preconditioning vertex of Algorithm 6 (line 2),
// joined to every P vertex with resistance m^{1+2 eta}/a(v) where a(v)
// sums the nu weights around v (line 5).
func (st *cmsvState) supportGraph(w []float64, precon bool) *graph.Graph {
	n := st.l.nP + st.l.nQ
	if precon {
		n++
	}
	g := graph.New(n)
	for i := range st.f {
		u, q := st.l.ends(i)
		weight := 1.0
		if w != nil {
			weight = w[i]
		}
		if weight <= 0 || math.IsNaN(weight) || math.IsInf(weight, 0) {
			weight = 1e-12
		}
		g.MustAddEdge(u, q, weight)
	}
	if precon {
		v0 := st.l.nP + st.l.nQ
		scale := math.Pow(float64(st.l.nQ)+2, 1+2*st.eta)
		a := st.preconA()
		for u := 0; u < st.l.nP; u++ {
			if a[u] > 0 {
				g.MustAddEdge(v0, u, a[u]/scale)
			}
		}
	}
	return g
}

// preconA returns a(v) per P vertex: the sum of nu weights around v, the
// quantity behind the v0 preconditioning star of Algorithm 6 (line 5).
func (st *cmsvState) preconA() []float64 {
	a := make([]float64, st.l.nP)
	for i := range st.f {
		u, _ := st.l.ends(i)
		a[u] += st.nu[i] + st.nu[i^1]
	}
	return a
}

// solve runs one Laplacian solve on the v0-preconditioned bipartite
// support and charges the Theorem 1.1 round formula (calibrated once with
// a measured sparsifier alpha). The returned potentials are truncated back
// to the bipartite vertices (flow pushed onto v0 edges is discarded; the
// corrector solve of Algorithm 9 repairs the resulting first-order
// divergence, see DESIGN.md). The default path reweights the build-once
// session; FreshBuild rebuilds the support and Laplacian per solve
// (baseline/oracle). slot names the warm-start lane ("predictor" or
// "corrector"). The charge is topology-calibrated, so both paths put
// identical charged rounds on the ledger.
func (st *cmsvState) solve(w []float64, b linalg.Vec, slot string) (linalg.Vec, error) {
	if !st.chargeOK && st.opts.Ledger != nil {
		unit := st.supportGraph(nil, false)
		sres, err := sparsify.Sparsify(unit, sparsify.Options{Metrics: st.opts.Metrics, Workers: st.opts.Workers})
		if err != nil {
			return nil, fmt.Errorf("mcmf: calibrating solver charge: %w", err)
		}
		alpha, err := sparsify.MeasureAlpha(unit, sres.H, 100)
		if err != nil {
			return nil, fmt.Errorf("mcmf: calibrating solver charge: %w", err)
		}
		st.alphaRef = alpha
		st.chargeOK = true
	}
	var x linalg.Vec
	var err error
	if st.opts.FreshBuild {
		support := st.supportGraph(w, true)
		lg := linalg.NewLaplacian(support)
		lg.SetPool(linalg.SharedPool(st.opts.Workers))
		rhs := linalg.NewVec(support.N())
		copy(rhs, b)
		x, err = linalg.LaplacianCGSolver(lg, st.opts.SolveEps)(rhs)
	} else {
		x, err = st.sessionSolve(w, b, slot)
	}
	if err != nil {
		return nil, fmt.Errorf("mcmf: electrical solve: %w", err)
	}
	x = x[:st.l.nP+st.l.nQ]
	if st.opts.Ledger != nil {
		charge := int64(linalg.ChebyIterationBound(st.alphaRef*st.alphaRef, st.opts.SolveEps)) + 2
		st.opts.Ledger.Add("mcmf-lapsolve", rounds.Charged, charge,
			"Thm 1.1 solver, n^{o(1)} log(W/eps) rounds (alpha measured)")
	}
	return x, nil
}

// sessionSolve lazily builds the electrical session on the first call and
// reweights it in place afterwards — the only place this IPM constructs a
// Laplacian: exactly once per topology.
func (st *cmsvState) sessionSolve(w []float64, b linalg.Vec, slot string) (linalg.Vec, error) {
	if st.sess == nil {
		support := st.supportGraph(w, true)
		// WarmStart stays off for charged-round parity with the fresh-build
		// path; see the maxflow sessionSolve comment.
		sess, err := electrical.NewSession(support, electrical.SessionOptions{Trace: st.opts.Trace, Budget: st.opts.Budget, Metrics: st.opts.Metrics, Workers: st.opts.Workers})
		if err != nil {
			return nil, err
		}
		st.sess = sess
		st.wFull = make([]float64, support.M())
	} else {
		st.fillSessionWeights(w)
		if err := st.sess.Reweight(st.wFull); err != nil {
			return nil, err
		}
	}
	rhs := linalg.NewVec(st.sess.Graph().N())
	copy(rhs, b)
	return st.sess.Potentials(rhs, st.opts.SolveEps, slot)
}

// fillSessionWeights writes the current conductances into wFull in the
// session graph's edge order: the bipartite edges (edge-id order) followed
// by the v0 star edges (ascending P vertex, skipping a(v) = 0 vertices,
// which have no incident edges and never gain any). Degenerate bipartite
// weights are left as-is — Session.Reweight applies the same 1e-12 clamp
// supportGraph does.
func (st *cmsvState) fillSessionWeights(w []float64) {
	for i := range st.f {
		weight := 1.0
		if w != nil {
			weight = w[i]
		}
		st.wFull[i] = weight
	}
	scale := math.Pow(float64(st.l.nQ)+2, 1+2*st.eta)
	a := st.preconA()
	idx := len(st.f)
	for u := 0; u < st.l.nP; u++ {
		if a[u] > 0 {
			st.wFull[idx] = a[u] / scale
			idx++
		}
	}
}

// demandVec is the bipartite demand vector: P vertices supply b(u), Q
// vertices absorb 1.
func (st *cmsvState) demandVec() linalg.Vec {
	b := linalg.NewVec(st.l.nP + st.l.nQ)
	for u := 0; u < st.l.nP; u++ {
		b[u] = float64(st.l.b[u])
	}
	for q := 0; q < st.l.nQ; q++ {
		b[st.l.nP+q] = -1
	}
	return b
}

// run executes the MinCostFlow loop structure (Algorithm 6): Perturbation
// while the weighted congestion is large, then Progress, within the
// m^{3/7} polylog W budget.
func (st *cmsvState) run(res *Result) error {
	m := float64(st.l.nQ)
	w := math.Log(float64(st.l.dg.MaxCost()) + 2)
	budget := int(math.Ceil(st.opts.BudgetFactor * math.Pow(m, 3.0/7.0) * w))
	if budget < 4 {
		budget = 4
	}
	cRho := 4.0 * math.Cbrt(w) // paper: 400*sqrt(3)*log^{1/3} W; constant tamed
	rhoBound := cRho * math.Pow(m, 0.5-st.eta)
	perturbFuse := 20 * st.l.edges()

	sp := st.opts.Trace.Start("ipm")
	defer sp.End()
	for iter := 0; iter < budget; iter++ {
		if err := st.opts.Budget.Check(fmt.Sprintf("mcmf-iter-%d", iter)); err != nil {
			return err
		}
		isp := st.opts.Trace.Startf("progress-%d", iter)
		if iter > 0 {
			for res.Perturbations < perturbFuse && st.weightedRhoNorm(3) > rhoBound {
				st.perturb(res)
			}
		}
		err := st.progress(res)
		isp.End()
		if err != nil {
			return err
		}
		if mu := st.mu(); mu < 1.0/(8*m) {
			break
		}
	}
	res.FinalMu = st.mu()
	return nil
}

// mu is the mean complementarity.
func (st *cmsvState) mu() float64 {
	var sum float64
	for i := range st.f {
		sum += st.f[i] * st.s[i]
	}
	return sum / float64(len(st.f))
}

// weightedRhoNorm is ||rho||_{nu,p} = (sum nu_e |rho_e|^p)^{1/p}.
func (st *cmsvState) weightedRhoNorm(p float64) float64 {
	var sum float64
	for i := range st.rho {
		sum += st.nu[i] * math.Pow(math.Abs(st.rho[i]), p)
	}
	return math.Pow(sum, 1/p)
}

// perturb is Algorithm 8 applied at the Q vertex whose edge is most
// congested: double that edge's weight, shift the vertex dual by its slack,
// and rebalance the partner edge's weight.
func (st *cmsvState) perturb(res *Result) {
	best, bestRho := -1, 0.0
	for i := range st.rho {
		if a := math.Abs(st.rho[i]); a > bestRho {
			best, bestRho = i, a
		}
	}
	if best < 0 {
		return
	}
	e := best
	partner := e ^ 1
	_, q := st.l.ends(e)
	// y_q -= s_e shifts both slacks at q upward by s_e.
	se := st.s[e]
	st.y[q] -= se
	st.s[e] += se
	st.s[partner] += se
	st.nu[partner] += st.nu[e] * st.f[e] / math.Max(st.f[partner], 1e-12)
	st.nu[e] *= 2
	st.rho[e] = 0 // treated; recomputed next Progress
	res.Perturbations++
}

// progress is Algorithm 9: a predictor step toward the electrical
// re-routing of the demands under barrier resistances, followed by a
// corrector solve that restores the demands exactly.
func (st *cmsvState) progress(res *Result) error {
	e := st.l.edges()
	w := make([]float64, e)
	for i := 0; i < e; i++ {
		r := st.nu[i] / (st.f[i] * st.f[i])
		w[i] = 1 / r
	}
	phi, err := st.solve(w, st.demandVec(), "predictor")
	if err != nil {
		return err
	}
	ftilde := make([]float64, e)
	for i := 0; i < e; i++ {
		u, q := st.l.ends(i)
		ftilde[i] = w[i] * (phi[u] - phi[q])
		st.rho[i] = ftilde[i] / st.f[i]
	}
	// delta = min(1/(8 ||rho||_{nu,4}), 1/8)  (Algorithm 9 line 4).
	delta := 1.0 / 8
	if nrm := st.weightedRhoNorm(4); nrm > 0 {
		delta = math.Min(delta, 1/(8*nrm))
	}

	fPrime := make([]float64, e)
	sPrime := make([]float64, e)
	fSharp := make([]float64, e)
	const fMin = 1e-9
	for i := 0; i < e; i++ {
		u, q := st.l.ends(i)
		fPrime[i] = (1-delta)*st.f[i] + delta*ftilde[i]
		if fPrime[i] < fMin {
			fPrime[i] = fMin
		}
		sPrime[i] = st.s[i] + delta/(1-delta)*(phi[u]-phi[q])
		if sPrime[i] < fMin {
			sPrime[i] = fMin
		}
		fSharp[i] = (1 - delta) * st.f[i] * st.s[i] / sPrime[i]
		if fSharp[i] < fMin {
			fSharp[i] = fMin
		}
	}

	// Corrector: route the residue of f' - f# (Algorithm 9 lines 7-10).
	resid := linalg.NewVec(st.l.nP + st.l.nQ)
	for i := 0; i < e; i++ {
		u, q := st.l.ends(i)
		d := fPrime[i] - fSharp[i]
		resid[u] += d
		resid[q] -= d
	}
	w2 := make([]float64, e)
	for i := 0; i < e; i++ {
		r := sPrime[i] * sPrime[i] / ((1 - delta) * st.f[i] * st.s[i])
		w2[i] = 1 / r
	}
	phi2, err := st.solve(w2, resid, "corrector")
	if err != nil {
		return err
	}
	for i := 0; i < e; i++ {
		u, q := st.l.ends(i)
		ft2 := w2[i] * (phi2[u] - phi2[q])
		nf := fSharp[i] + ft2
		if nf < fMin {
			nf = fMin
		}
		st.f[i] = nf
		ns := sPrime[i] - sPrime[i]*ft2/fSharp[i]
		if ns < fMin {
			ns = fMin
		}
		st.s[i] = ns
	}
	res.ProgressIterations++
	return nil
}

// roundToMatching rounds the fractional bipartite assignment to an
// integral partial b-matching (Algorithm 10, lines 1-6): cap per-vertex
// sums at b, attach a super source/sink, and run Cohen rounding with
// Delta = O(1/m).
func (st *cmsvState) roundToMatching(res *Result) ([]int64, error) {
	l := st.l
	e := l.edges()
	nb := l.nP + l.nQ
	// Cap: scale down vertex neighborhoods exceeding b (line 3).
	fCap := append([]float64(nil), st.f...)
	for pass := 0; pass < 2; pass++ {
		sum := make([]float64, nb)
		for i := 0; i < e; i++ {
			u, q := l.ends(i)
			sum[u] += fCap[i]
			sum[q] += fCap[i]
		}
		for i := 0; i < e; i++ {
			u, q := l.ends(i)
			scale := 1.0
			if sum[u] > float64(l.b[u]) {
				scale = math.Min(scale, float64(l.b[u])/sum[u])
			}
			if sum[q] > float64(l.b[q]) {
				scale = math.Min(scale, float64(l.b[q])/sum[q])
			}
			fCap[i] *= scale
		}
	}
	// Super source s -> P, Q -> super sink t (line 4).
	S, T := nb, nb+1
	rdg := graph.NewDi(nb + 2)
	flows := make([]float64, 0, e+nb)
	edgeArc := make([]int, e)
	for i := 0; i < e; i++ {
		u, q := l.ends(i)
		edgeArc[i] = rdg.MustAddArc(u, q, 1, l.edgeCost(i))
		flows = append(flows, fCap[i])
	}
	sumP := make([]float64, l.nP)
	sumQ := make([]float64, l.nQ)
	for i := 0; i < e; i++ {
		u, q := l.ends(i)
		sumP[u] += fCap[i]
		sumQ[q-l.nP] += fCap[i]
	}
	for u := 0; u < l.nP; u++ {
		rdg.MustAddArc(S, u, l.b[u], 0)
		flows = append(flows, sumP[u])
	}
	for q := 0; q < l.nQ; q++ {
		rdg.MustAddArc(l.nP+q, T, 1, 0)
		flows = append(flows, sumQ[q])
	}
	delta := 1.0
	for delta > 1.0/(4*float64(e+2)) {
		delta /= 2
	}
	snapped, err := flowround.SnapToGrid(rdg, flows, S, T, delta)
	if err != nil {
		return nil, fmt.Errorf("mcmf: snapping bipartite flow: %w", err)
	}
	rounded, err := flowround.RoundWith(rdg, snapped, S, T, delta, true,
		flowround.Options{Ledger: st.opts.Ledger, Trace: st.opts.Trace, Faults: st.opts.Faults, Transport: st.opts.Transport, Budget: st.opts.Budget, Metrics: st.opts.Metrics})
	if err != nil {
		return nil, fmt.Errorf("mcmf: rounding bipartite flow: %w", err)
	}
	match := make([]int64, e)
	matchedQ := make([]int64, l.nQ)
	matchedP := make([]int64, l.nP)
	for i := 0; i < e; i++ {
		v := rounded[edgeArc[i]]
		if v <= 0 {
			continue
		}
		u, q := l.ends(i)
		// Enforce b-feasibility strictly (rounding keeps it via the
		// super-arcs, but clamp defensively).
		if matchedQ[q-l.nP] >= 1 || matchedP[u] >= l.b[u] {
			continue
		}
		match[i] = 1
		matchedQ[q-l.nP]++
		matchedP[u]++
	}
	_ = res
	return match, nil
}

// repair completes the partial b-matching to a full one of exactly minimum
// cost: successive shortest augmenting paths (each charged one CKKL+19
// APSP, Algorithm 10 lines 7-17), then residual negative-cycle cancelling
// to certify exact optimality (see DESIGN.md).
func (st *cmsvState) repair(match []int64, res *Result) error {
	l := st.l
	e := l.edges()
	nb := l.nP + l.nQ

	matchedP := make([]int64, l.nP)
	matchedQ := make([]int64, l.nQ)
	for i := 0; i < e; i++ {
		if match[i] == 1 {
			u, q := l.ends(i)
			matchedP[u]++
			matchedQ[q-l.nP]++
		}
	}

	// Residual graph over bipartite vertices plus a virtual source/sink.
	// Super arcs get IDs >= e so they are distinguishable both from real
	// edges and from the shortest-path "no parent" sentinel (-1).
	S, T := nb, nb+1
	superBase := e
	buildAdj := func() [][]shortestpath.Arc {
		adj := make([][]shortestpath.Arc, nb+2)
		for i := 0; i < e; i++ {
			u, q := l.ends(i)
			c := l.edgeCost(i)
			if match[i] == 0 {
				adj[u] = append(adj[u], shortestpath.Arc{To: q, Weight: c, ID: i})
			} else {
				adj[q] = append(adj[q], shortestpath.Arc{To: u, Weight: -c, ID: i})
			}
		}
		for u := 0; u < l.nP; u++ {
			if matchedP[u] < l.b[u] {
				adj[S] = append(adj[S], shortestpath.Arc{To: u, Weight: 0, ID: superBase + u})
			}
		}
		for q := 0; q < l.nQ; q++ {
			if matchedQ[q] < 1 {
				adj[l.nP+q] = append(adj[l.nP+q], shortestpath.Arc{To: T, Weight: 0, ID: superBase + l.nP + q})
			}
		}
		return adj
	}

	flip := func(ids []int) {
		for _, id := range ids {
			if id < 0 || id >= e {
				continue // super arc
			}
			u, q := l.ends(id)
			if match[id] == 0 {
				match[id] = 1
				matchedP[u]++
				matchedQ[q-l.nP]++
			} else {
				match[id] = 0
				matchedP[u]--
				matchedQ[q-l.nP]--
			}
		}
	}

	// Fuse: every cancellation strictly lowers the (integer) matching cost
	// and every augmentation raises the matched count, so the loop is
	// finite; the fuse only guards against implementation bugs.
	maxSteps := 4*l.edges()*(1+int(st.l.dg.MaxCost())) + 1000
	for step := 0; ; step++ {
		if step > maxSteps {
			return fmt.Errorf("mcmf: internal: repairing exceeded %d steps", maxSteps)
		}
		adj := buildAdj()
		// Cancel any negative residual cycle first: the rounded partial
		// matching need not be optimal for its own size, and Bellman-Ford
		// cannot run shortest paths over one anyway. At completion, no
		// negative cycle certifies exact optimality of the b-matching.
		cyc, err := findNegativeCycle(adj, nb+2)
		if err != nil {
			return fmt.Errorf("mcmf: internal: %w", err)
		}
		if cyc != nil {
			flip(cyc)
			res.CyclesCancelled++
			shortestpath.ChargeAPSP(st.opts.Ledger, nb)
			continue
		}
		var deficit int64
		for q := 0; q < l.nQ; q++ {
			deficit += 1 - matchedQ[q]
		}
		if deficit == 0 {
			return nil
		}
		sp, err := shortestpath.BellmanFord(adj, []int{S})
		if err != nil {
			return fmt.Errorf("mcmf: repairing: %w", err)
		}
		if sp.Dist[T] >= shortestpath.Inf {
			return fmt.Errorf("%w: %d unmatched Q vertices unreachable", ErrInfeasible, deficit)
		}
		shortestpath.ChargeAPSP(st.opts.Ledger, nb)
		res.RepairAugmentations++
		flip(sp.PathTo(T))
	}
}

// findNegativeCycle returns the arc IDs of one verified negative cycle in
// adj, or (nil, nil) when none exists. Bellman-Ford from a virtual
// super-source (all distances start at 0); nodes still relaxing after n
// passes sit on predecessor chains leading into negative cycles, which are
// extracted by visited-marking walks and verified by summing their weights.
func findNegativeCycle(adj [][]shortestpath.Arc, n int) ([]int, error) {
	dist := make([]int64, n)
	parentArc := make([]int, n)
	parentV := make([]int, n)
	for i := range parentArc {
		parentArc[i] = -1
		parentV[i] = -1
	}
	weightOf := make(map[int]int64)
	var lastRelaxed []int
	for round := 0; round <= n; round++ {
		changed := false
		lastRelaxed = lastRelaxed[:0]
		for v := 0; v < n; v++ {
			for _, a := range adj[v] {
				if dist[v]+a.Weight < dist[a.To] {
					dist[a.To] = dist[v] + a.Weight
					parentArc[a.To] = a.ID
					parentV[a.To] = v
					weightOf[a.ID] = a.Weight
					changed = true
					lastRelaxed = append(lastRelaxed, a.To)
				}
			}
		}
		if !changed {
			return nil, nil
		}
	}
	// Any node relaxed in the final pass has a predecessor chain entering a
	// cycle of the parent graph; such cycles have negative total weight.
	for _, cand := range lastRelaxed {
		order := make(map[int]int)
		var seq []int
		v := cand
		for v >= 0 {
			if at, seen := order[v]; seen {
				nodes := seq[at:]
				var ids []int
				var total int64
				ok := true
				for _, w := range nodes {
					id := parentArc[w]
					if id < 0 {
						ok = false
						break
					}
					ids = append(ids, id)
					total += weightOf[id]
				}
				if ok && total < 0 {
					return ids, nil
				}
				break
			}
			order[v] = len(seq)
			seq = append(seq, v)
			v = parentV[v]
		}
	}
	return nil, errors.New("negative cycle detected but extraction failed")
}
