package trace_test

import (
	"bytes"
	"io"
	"sync"
	"testing"

	"lapcc/internal/cc"
	"lapcc/internal/experiments"
	"lapcc/internal/graph"
	"lapcc/internal/lapsolver"
	"lapcc/internal/rounds"
	"lapcc/internal/trace"
)

// tracedSolve runs one seeded Laplacian solve with a fresh tracer and
// returns its JSONL stream.
func tracedSolve(t *testing.T) []byte {
	t.Helper()
	g, err := graph.RandomRegular(96, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New()
	led := rounds.New()
	s, err := lapsolver.NewSolver(g, lapsolver.Options{Ledger: led, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, g.N())
	b[0], b[g.N()-1] = 1, -1
	if _, _, err := s.Solve(b, 1e-8); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestJSONLDeterminism is the golden determinism bar: two runs of the same
// seeded workload must produce byte-identical JSONL streams.
func TestJSONLDeterminism(t *testing.T) {
	first := tracedSolve(t)
	second := tracedSolve(t)
	if len(first) == 0 {
		t.Fatal("traced solve produced an empty event stream")
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("JSONL streams differ across identical runs:\n--- first (%d bytes)\n%s\n--- second (%d bytes)\n%s",
			len(first), head(first), len(second), head(second))
	}
	if err := trace.ValidateJSONL(bytes.NewReader(first)); err != nil {
		t.Fatalf("stream fails schema validation: %v", err)
	}
}

func head(b []byte) []byte {
	if len(b) > 2048 {
		return b[:2048]
	}
	return b
}

// TestConcurrentRecordingRace stresses span recording while a multi-worker
// engine drives the tracer's observer and other goroutines hammer the
// ledger sink; run under -race this proves the tracer's locking.
func TestConcurrentRecordingRace(t *testing.T) {
	tr := trace.New()
	led := rounds.New()
	tr.Attach(led)

	const n = 32
	e := cc.NewEngine(n)
	e.SetObserver(tr.Observer())

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Driving goroutine behavior: nested spans opening and closing.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			sp := tr.Startf("outer-%d", i)
			inner := tr.Start("inner")
			inner.End()
			sp.End()
		}
	}()
	// Cost sources from other goroutines (the ledger is shared).
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				led.Add("stress", rounds.Measured, 1, "race stress")
				led.AddTraffic("stress", 2, 4)
			}
		}(w)
	}
	// The engine's workers run an all-to-all gossip; each completed round
	// fires the observer.
	step := func(node, round int, inbox []cc.Message, send func(int, ...int64)) bool {
		if round >= 20 {
			return true
		}
		for v := 0; v < n; v++ {
			if v != node {
				send(v, int64(round))
			}
		}
		return false
	}
	if _, err := e.Run(step, 64); err != nil {
		close(stop)
		wg.Wait()
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if err := trace.ValidateJSONL(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("stream recorded under concurrency fails validation: %v", err)
	}
}

// TestTraceSmoke runs one traced solve per algorithm layer (the same
// workloads as experiment E11 and `make trace-smoke`), validates the JSONL
// schema, and enforces the attribution bar: at least 95% of all recorded
// rounds must land in a named span.
func TestTraceSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full-stack smoke is slow")
	}
	tr := trace.New()
	if err := experiments.TraceProfile(io.Discard, true, tr); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if err := trace.ValidateJSONL(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("smoke stream fails schema validation: %v", err)
	}
	att, unatt := tr.AttributedRounds()
	if att+unatt == 0 {
		t.Fatal("smoke run recorded no rounds")
	}
	if f := tr.AttributedFraction(); f < 0.95 {
		t.Fatalf("attribution %.3f (attributed %d, unattributed %d), want >= 0.95", f, att, unatt)
	}
	var chrome bytes.Buffer
	if err := tr.WriteChromeTrace(&chrome); err != nil {
		t.Fatal(err)
	}
	if chrome.Len() == 0 {
		t.Fatal("chrome export empty")
	}
}
