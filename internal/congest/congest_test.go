package congest

import (
	"errors"
	"testing"
	"testing/quick"

	"lapcc/internal/graph"
	"lapcc/internal/shortestpath"
)

func TestEngineRejectsNonNeighborSend(t *testing.T) {
	g := graph.Path(4) // 0-1-2-3: 0 and 3 are not adjacent
	e := NewEngine(g)
	step := func(node, round int, inbox []Message, send func(int, ...int64)) bool {
		if node == 0 && round == 0 {
			send(3, 1)
		}
		return true
	}
	if _, err := e.Run(step, 5); !errors.Is(err, ErrNotNeighbor) {
		t.Fatalf("error = %v, want ErrNotNeighbor", err)
	}
}

func TestEngineAllowsNeighborExchange(t *testing.T) {
	g := graph.Path(3)
	e := NewEngine(g)
	got := make([]int64, 3)
	step := func(node, round int, inbox []Message, send func(int, ...int64)) bool {
		if round == 0 {
			for _, h := range g.Adj(node) {
				send(h.To, int64(node))
			}
			return false
		}
		for _, m := range inbox {
			got[node] += m.Data[0] + 1
		}
		return true
	}
	used, err := e.Run(step, 5)
	if err != nil {
		t.Fatal(err)
	}
	if used != 1 {
		t.Fatalf("used %d rounds, want 1", used)
	}
	if got[1] != (0+1)+(2+1) {
		t.Fatalf("middle node received %d", got[1])
	}
	if e.Messages() != 4 {
		t.Fatalf("messages = %d, want 4", e.Messages())
	}
}

func TestEngineDuplicateEdgeMessage(t *testing.T) {
	g := graph.Path(2)
	e := NewEngine(g)
	step := func(node, round int, inbox []Message, send func(int, ...int64)) bool {
		if node == 0 && round == 0 {
			send(1, 1)
			send(1, 2)
		}
		return true
	}
	if _, err := e.Run(step, 3); !errors.Is(err, ErrDuplicatePair) {
		t.Fatalf("error = %v, want ErrDuplicatePair", err)
	}
}

func TestBFSPathDistances(t *testing.T) {
	g := graph.Path(6)
	res, err := BFS(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 6; v++ {
		if res.Dist[v] != int64(v) {
			t.Fatalf("dist[%d] = %d, want %d", v, res.Dist[v], v)
		}
	}
	// BFS rounds track the eccentricity (5) plus quiescence slack.
	if res.Rounds < 5 || res.Rounds > 8 {
		t.Fatalf("BFS used %d rounds on a path of eccentricity 5", res.Rounds)
	}
}

func TestBFSMatchesCentralizedOracle(t *testing.T) {
	f := func(seed int64) bool {
		g, err := graph.ConnectedGNM(20, 35, seed)
		if err != nil {
			return false
		}
		res, err := BFS(g, 0)
		if err != nil {
			return false
		}
		adj := make([][]shortestpath.Arc, g.N())
		for _, e := range g.Edges() {
			adj[e.U] = append(adj[e.U], shortestpath.Arc{To: e.V, Weight: 1})
			adj[e.V] = append(adj[e.V], shortestpath.Arc{To: e.U, Weight: 1})
		}
		want := shortestpath.BFS(adj, []int{0})
		for v := 0; v < g.N(); v++ {
			if res.Dist[v] != want.Dist[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := graph.New(4)
	g.MustAddEdge(0, 1, 1)
	res, err := BFS(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dist[2] != -1 || res.Dist[3] != -1 {
		t.Fatalf("dist = %v", res.Dist)
	}
}

// The point of the package: CONGEST pays the diameter where the clique pays
// O(1). On a path, BFS rounds grow linearly with n; on an expander of the
// same size they stay logarithmic.
func TestDiameterDependenceMeasured(t *testing.T) {
	path := graph.Path(128)
	pres, err := BFS(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	exp, err := graph.RandomRegular(128, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	eres, err := BFS(exp, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("BFS rounds: path n=128 -> %d, expander n=128 -> %d", pres.Rounds, eres.Rounds)
	if pres.Rounds < 100 {
		t.Fatalf("path BFS used %d rounds; expected ~n", pres.Rounds)
	}
	if eres.Rounds > 12 {
		t.Fatalf("expander BFS used %d rounds; expected ~log n", eres.Rounds)
	}
}

func TestDiameterUtility(t *testing.T) {
	d, err := Diameter(graph.Path(10))
	if err != nil {
		t.Fatal(err)
	}
	if d != 9 {
		t.Fatalf("path diameter = %d, want 9", d)
	}
	g := graph.New(3)
	g.MustAddEdge(0, 1, 1)
	if _, err := Diameter(g); err == nil {
		t.Fatal("disconnected diameter should error")
	}
}

func TestBFSBadSource(t *testing.T) {
	if _, err := BFS(graph.Path(3), 7); err == nil {
		t.Fatal("out-of-range source accepted")
	}
}
