package linalg

import (
	"errors"
	"fmt"
	"math"
)

// Lanczos-based eigenvalue estimation. The power-iteration route
// (PencilBounds) needs solves with *both* matrices of the pencil; the
// Lanczos route needs only the preconditioner solve: the operator B^+A is
// self-adjoint in the B-inner product, so a generalized Lanczos iteration
// builds a tridiagonal whose extremal Ritz values converge to both ends of
// the pencil spectrum simultaneously. Everything here is internal
// computation in the congested-clique accounting (used for measurement and
// experiments, not inside the round-counted algorithms).

// ErrLanczosBreakdown reports an invariant subspace hit before any
// meaningful tridiagonal was built.
var ErrLanczosBreakdown = errors.New("linalg: Lanczos breakdown at first step")

// Tridiagonal holds the Lanczos coefficients: diagonal Alpha[0..k-1] and
// off-diagonal Beta[0..k-2].
type Tridiagonal struct {
	Alpha []float64
	Beta  []float64
}

// Lanczos runs up to k steps of the Lanczos iteration for the operator
// represented by apply, self-adjoint with respect to the (semi-definite)
// inner product inner. Full reorthogonalization against the stored basis
// keeps the tridiagonal faithful (plain three-term recurrences lose
// orthogonality in floating point and produce ghost eigenvalues); the
// measurement sizes this package targets make the O(k n) extra work
// negligible. Early termination on (near-)breakdown returns the
// tridiagonal built so far.
func Lanczos(n, k int, start Vec, apply func(dst, src Vec), inner func(u, v Vec) float64) (*Tridiagonal, error) {
	if len(start) != n {
		return nil, fmt.Errorf("linalg: start vector length %d for dimension %d", len(start), n)
	}
	if k > n {
		k = n
	}
	q := start.Clone()
	nrm := math.Sqrt(math.Max(inner(q, q), 0))
	if nrm == 0 {
		return nil, ErrLanczosBreakdown
	}
	q.Scale(1 / nrm)
	basis := []Vec{q.Clone()}
	td := &Tridiagonal{}
	w := NewVec(n)
	scale := 0.0
	for j := 0; j < k; j++ {
		apply(w, basis[j])
		alpha := inner(basis[j], w)
		td.Alpha = append(td.Alpha, alpha)
		if a := math.Abs(alpha); a > scale {
			scale = a
		}
		// Two passes of Gram-Schmidt against the whole basis (in the
		// operator's inner product) instead of the three-term recurrence.
		for pass := 0; pass < 2; pass++ {
			for _, b := range basis {
				c := inner(b, w)
				w.AXPY(-c, b)
			}
		}
		beta := math.Sqrt(math.Max(inner(w, w), 0))
		// Relative breakdown test: once the residual is negligible against
		// the spectrum scale, further vectors are noise and would
		// contaminate the Ritz values.
		if beta < 1e-7*(scale+1) || j+1 >= k {
			break
		}
		td.Beta = append(td.Beta, beta)
		if beta > scale {
			scale = beta
		}
		next := w.Clone()
		next.Scale(1 / beta)
		basis = append(basis, next)
	}
	if len(td.Alpha) == 0 {
		return nil, ErrLanczosBreakdown
	}
	return td, nil
}

// EigenRange returns the smallest and largest eigenvalue of the symmetric
// tridiagonal via bisection on the Sturm sequence (robust, no external
// dependencies).
func (td *Tridiagonal) EigenRange() (lo, hi float64) {
	k := len(td.Alpha)
	if k == 0 {
		return 0, 0
	}
	// Gershgorin bounds bracket the spectrum.
	glo, ghi := math.Inf(1), math.Inf(-1)
	for i := 0; i < k; i++ {
		r := 0.0
		if i > 0 {
			r += math.Abs(td.Beta[i-1])
		}
		if i < k-1 {
			r += math.Abs(td.Beta[i])
		}
		if td.Alpha[i]-r < glo {
			glo = td.Alpha[i] - r
		}
		if td.Alpha[i]+r > ghi {
			ghi = td.Alpha[i] + r
		}
	}
	lo = td.bisect(glo, ghi, 1)
	hi = td.bisect(glo, ghi, k)
	return lo, hi
}

// countBelow returns the number of eigenvalues of the tridiagonal that are
// <= x, via the LDL^T ratio recurrence (the number of negative pivots of
// T - xI). Exact-zero pivots are perturbed to a tiny negative, which makes
// an eigenvalue exactly at x count as "below" — the convention bisection
// needs for convergence.
func (td *Tridiagonal) countBelow(x float64) int {
	count := 0
	q := 0.0
	for i := range td.Alpha {
		if i == 0 {
			q = td.Alpha[0] - x
		} else {
			denom := q
			if denom == 0 {
				denom = -1e-300
			}
			q = td.Alpha[i] - x - td.Beta[i-1]*td.Beta[i-1]/denom
		}
		if q <= 0 {
			count++
		}
	}
	return count
}

// bisect finds the idx-th smallest eigenvalue (1-based) within [lo, hi].
func (td *Tridiagonal) bisect(lo, hi float64, idx int) float64 {
	for iter := 0; iter < 200 && hi-lo > 1e-12*(1+math.Abs(lo)+math.Abs(hi)); iter++ {
		mid := (lo + hi) / 2
		if td.countBelow(mid) < idx {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// pencilTopLanczos estimates the largest generalized eigenvalue of the
// pencil (A, B) with k steps of B-inner-product Lanczos on B^+A. Top Ritz
// values converge fast and resist the floating-point contamination that
// plagues the small end of a semi-inner-product Krylov space.
func pencilTopLanczos(a, b Operator, bSolve func(Vec) (Vec, error), k int) (float64, error) {
	n := a.Dim()
	tmpApply := NewVec(n)
	tmpInner := NewVec(n)
	var solveErr error
	apply := func(dst, src Vec) {
		a.Apply(tmpApply, src)
		tmpApply.RemoveMean()
		y, e := bSolve(tmpApply)
		if e != nil {
			solveErr = e
			dst.Zero()
			return
		}
		copy(dst, y)
		dst.RemoveMean()
	}
	binner := func(u, v Vec) float64 {
		b.Apply(tmpInner, v)
		return u.Dot(tmpInner)
	}
	start := deterministicStart(n)
	td, err := Lanczos(n, k, start, apply, binner)
	if err != nil {
		return 0, fmt.Errorf("linalg: pencil Lanczos: %w", err)
	}
	if solveErr != nil {
		return 0, fmt.Errorf("linalg: pencil Lanczos solve: %w", solveErr)
	}
	_, hi := td.EigenRange()
	return hi, nil
}

// PencilBoundsLanczos estimates (lambdaMin, lambdaMax) of the pencil
// (A, B) — the extreme generalized eigenvalues on the mean-free subspace —
// via two top-value Lanczos runs: on B^+A for lambdaMax and on A^+B for
// 1/lambdaMin. Converges in far fewer operator applications than
// PencilBounds' power iterations. Typical k: 30-80.
func PencilBoundsLanczos(a, b Operator, aSolve, bSolve func(Vec) (Vec, error), k int) (lamMin, lamMax float64, err error) {
	lamMax, err = pencilTopLanczos(a, b, bSolve, k)
	if err != nil {
		return 0, 0, fmt.Errorf("linalg: pencil lambda_max: %w", err)
	}
	inv, err := pencilTopLanczos(b, a, aSolve, k)
	if err != nil {
		return 0, 0, fmt.Errorf("linalg: pencil lambda_min: %w", err)
	}
	if inv <= 0 {
		return 0, 0, fmt.Errorf("linalg: pencil lambda_min estimate non-positive (%v)", inv)
	}
	return 1 / inv, lamMax, nil
}
