package linalg

import (
	"math"
	"testing"

	"lapcc/internal/graph"
)

func TestPowerIterationPathLaplacian(t *testing.T) {
	// The path P_n Laplacian has lambda_max = 2 + 2*cos(pi/n) -> 4.
	n := 50
	l := NewLaplacian(graph.Path(n))
	lam, err := PowerIteration(l, 500)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 + 2*math.Cos(math.Pi/float64(n))
	if math.Abs(lam-want) > 1e-3 {
		t.Fatalf("lambda_max = %v, want %v", lam, want)
	}
}

func TestPowerIterationCompleteGraph(t *testing.T) {
	// K_n Laplacian has all nonzero eigenvalues equal to n.
	n := 12
	l := NewLaplacian(graph.Complete(n))
	lam, err := PowerIteration(l, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lam-float64(n)) > 1e-6 {
		t.Fatalf("lambda_max = %v, want %v", lam, float64(n))
	}
}

func TestPencilBoundsScaledGraph(t *testing.T) {
	// H = c*G gives pencil (L_G, L_H) with all eigenvalues exactly 1/c.
	g, err := graph.ConnectedGNM(15, 30, 22)
	if err != nil {
		t.Fatal(err)
	}
	lg := NewLaplacian(g)
	h := graph.New(g.N())
	const c = 4.0
	for _, e := range g.Edges() {
		h.MustAddEdge(e.U, e.V, c*e.W)
	}
	lh := NewLaplacian(h)
	aSolve := LaplacianCGSolver(lg, 1e-13)
	bSolve := LaplacianCGSolver(lh, 1e-13)
	lamMin, lamMax, err := PencilBounds(lg, lh, aSolve, bSolve, 200)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lamMax-1/c) > 1e-6 || math.Abs(lamMin-1/c) > 1e-6 {
		t.Fatalf("pencil bounds [%v, %v], want both 1/%v", lamMin, lamMax, c)
	}
}

func TestPencilBoundsPerturbedSandwich(t *testing.T) {
	// Edge weights perturbed by factor (1 ± p) give pencil eigenvalues in
	// [1/(1+p), 1+p].
	g, err := graph.ConnectedGNM(20, 45, 23)
	if err != nil {
		t.Fatal(err)
	}
	lg := NewLaplacian(graph.WithRandomWeights(g, 5, 24))
	const p = 0.5
	h := graph.New(g.N())
	for i, e := range lg.Graph().Edges() {
		w := e.W
		if i%2 == 0 {
			w *= 1 + p
		} else {
			w /= 1 + p
		}
		h.MustAddEdge(e.U, e.V, w)
	}
	lh := NewLaplacian(h)
	lamMin, lamMax, err := PencilBounds(lg, lh,
		LaplacianCGSolver(lg, 1e-13), LaplacianCGSolver(lh, 1e-13), 300)
	if err != nil {
		t.Fatal(err)
	}
	if lamMax > (1+p)*1.001 || lamMin < 1/(1+p)*0.999 {
		t.Fatalf("pencil bounds [%v, %v] escape sandwich [%v, %v]", lamMin, lamMax, 1/(1+p), 1+p)
	}
	alpha := EffectiveAlpha(lamMin, lamMax)
	if alpha < lamMax || alpha < 1/lamMin {
		t.Fatalf("EffectiveAlpha %v does not cover bounds [%v, %v]", alpha, lamMin, lamMax)
	}
}

func TestEffectiveAlphaFloorsAtOne(t *testing.T) {
	if a := EffectiveAlpha(1, 1); a < 1 {
		t.Fatalf("alpha = %v < 1", a)
	}
	if a := EffectiveAlpha(2, 0.9); a < 1 {
		t.Fatalf("alpha = %v < 1", a)
	}
}

func TestPowerIterationEmpty(t *testing.T) {
	d := NewDense(0)
	if _, err := PowerIteration(d, 10); err == nil {
		t.Fatal("empty operator should error")
	}
}
