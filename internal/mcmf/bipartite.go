package mcmf

import (
	"fmt"

	"lapcc/internal/graph"
)

// lifted is the CMSV bipartite lifting (Initialization, Algorithm 7):
//
//   - G1 extends the input with an auxiliary vertex and 2|t(v)| parallel
//     unit-capacity edges of cost ||c||_1 per vertex, where
//     t(v) = sigma(v) + (deg_in - deg_out)/2, making the all-halves
//     assignment meet every demand exactly;
//   - the bipartite graph has P = V(G1) and one Q-vertex per G1 arc; arc
//     (u,v) becomes edges (u, q) with the arc's cost and (v, q) with cost
//     0. Matching q to its *tail* means the arc is used; the b-matching
//     demands b(u) = deg_G1(u)/2 on P and b(q) = 1 on Q encode exactly the
//     flows routing sigma.
type lifted struct {
	dg    *graph.DiGraph
	sigma []int64

	// G1 arcs: tail, head, cost; origArc[i] >= 0 maps to the input arc.
	tail, head []int
	cost       []int64
	origArc    []int
	aux        int // auxiliary vertex id (== dg.N())

	// Bipartite structure: P vertex u is bipartite vertex u (0..nP-1);
	// Q vertex of G1 arc q is nP+q. Edge 2q connects (tail(q), Q_q) at
	// cost[q]; edge 2q+1 connects (head(q), Q_q) at cost 0.
	nP, nQ int
	b      []int64 // demands, indexed by bipartite vertex
}

// newLifted builds the lifting. All arcs must have unit capacity.
func newLifted(dg *graph.DiGraph, sigma []int64) (*lifted, error) {
	if err := checkDemand(dg, sigma); err != nil {
		return nil, err
	}
	var costL1 int64 = 1
	for _, a := range dg.Arcs() {
		if a.Cap != 1 {
			return nil, fmt.Errorf("mcmf: Theorem 1.3 requires unit capacities; arc has %d", a.Cap)
		}
		if a.Cost < 0 {
			return nil, fmt.Errorf("mcmf: negative cost %d", a.Cost)
		}
		costL1 += a.Cost
	}
	n := dg.N()
	l := &lifted{dg: dg, sigma: sigma, aux: n}
	for i, a := range dg.Arcs() {
		l.tail = append(l.tail, a.From)
		l.head = append(l.head, a.To)
		l.cost = append(l.cost, a.Cost)
		l.origArc = append(l.origArc, i)
	}
	// Balancing edges: t(v) = sigma(v) + (in - out)/2; add 2t(v) arcs
	// (v, aux) when positive, |2t(v)| arcs (aux, v) when negative.
	for v := 0; v < n; v++ {
		twoT := 2*sigma[v] + int64(dg.InDegree(v)) - int64(dg.OutDegree(v))
		for k := int64(0); k < twoT; k++ {
			l.tail = append(l.tail, v)
			l.head = append(l.head, l.aux)
			l.cost = append(l.cost, costL1)
			l.origArc = append(l.origArc, -1)
		}
		for k := int64(0); k < -twoT; k++ {
			l.tail = append(l.tail, l.aux)
			l.head = append(l.head, v)
			l.cost = append(l.cost, costL1)
			l.origArc = append(l.origArc, -1)
		}
	}
	l.nP = n + 1
	l.nQ = len(l.tail)
	// b(u) = deg_G1(u)/2 on P (always integral: every vertex of G1 has
	// even... not necessarily even degree, but sigma + deg_in is the
	// paper's form; the two coincide, and the all-halves start meets it).
	degG1 := make([]int64, l.nP)
	inG1 := make([]int64, l.nP)
	for q := range l.tail {
		degG1[l.tail[q]]++
		degG1[l.head[q]]++
		inG1[l.head[q]]++
	}
	l.b = make([]int64, l.nP+l.nQ)
	for u := 0; u < n; u++ {
		l.b[u] = sigma[u] + inG1[u]
	}
	l.b[l.aux] = inG1[l.aux]
	for q := 0; q < l.nQ; q++ {
		l.b[l.nP+q] = 1
	}
	// Sanity: the all-halves assignment must meet b exactly.
	for u := 0; u < l.nP; u++ {
		if 2*l.b[u] != degG1[u] {
			return nil, fmt.Errorf("mcmf: internal: lifting unbalanced at vertex %d (b=%d deg=%d)", u, l.b[u], degG1[u])
		}
	}
	return l, nil
}

// edges returns the number of bipartite edges (2 per G1 arc).
func (l *lifted) edges() int { return 2 * l.nQ }

// ends returns the bipartite endpoints (P vertex, Q vertex) of edge e.
func (l *lifted) ends(e int) (int, int) {
	q := e / 2
	if e%2 == 0 {
		return l.tail[q], l.nP + q
	}
	return l.head[q], l.nP + q
}

// edgeCost returns the cost of bipartite edge e.
func (l *lifted) edgeCost(e int) int64 {
	if e%2 == 0 {
		return l.cost[e/2]
	}
	return 0
}

// decode converts a complete b-matching (match[e] = 1 iff bipartite edge e
// is chosen) into a flow on the original digraph. It fails with
// ErrInfeasible if any auxiliary arc is used.
func (l *lifted) decode(match []int64) ([]int64, error) {
	flow := make([]int64, l.dg.M())
	for q := 0; q < l.nQ; q++ {
		used := match[2*q] == 1 // matched to the tail = arc used
		if !used {
			continue
		}
		if l.origArc[q] < 0 {
			return nil, fmt.Errorf("%w: auxiliary arc %d carries flow", ErrInfeasible, q)
		}
		flow[l.origArc[q]] = 1
	}
	return flow, nil
}

// matchCost returns the total cost of a (possibly partial) matching.
func (l *lifted) matchCost(match []int64) int64 {
	var c int64
	for e := range match {
		if match[e] == 1 {
			c += l.edgeCost(e)
		}
	}
	return c
}
