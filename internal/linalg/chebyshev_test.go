package linalg

import (
	"math"
	"testing"

	"lapcc/internal/graph"
)

// chebySetup builds a weighted connected graph G, a "sparsifier" H (here: G
// itself with perturbed weights so that the pencil has a known modest
// kappa), and the exact B-solver for alpha*L_H.
func chebySetup(t *testing.T, perturb float64) (lg *Laplacian, bSolve func(Vec) (Vec, error), kappa float64) {
	t.Helper()
	g, err := graph.ConnectedGNM(20, 50, 16)
	if err != nil {
		t.Fatal(err)
	}
	wg := graph.WithRandomWeights(g, 6, 17)
	lg = NewLaplacian(wg)

	h := graph.New(wg.N())
	for i, e := range wg.Edges() {
		w := e.W
		if i%2 == 0 {
			w *= 1 + perturb
		} else {
			w /= 1 + perturb
		}
		h.MustAddEdge(e.U, e.V, w)
	}
	// Edge-wise sandwich: L_G/(1+perturb) <= L_H <= (1+perturb) L_G,
	// i.e. with alpha = 1+perturb: (1/alpha) L_H <= L_G <= alpha L_H.
	alpha := 1 + perturb
	lh := NewLaplacian(h)
	inner := LaplacianCGSolver(lh, 1e-13)
	// Theorem 2.2 setup from Corollary 2.3: A = L_G, B = alpha*L_H,
	// kappa = alpha^2... actually the corollary uses kappa = alpha with
	// B = alpha L_H since L_G <= alpha L_H <= alpha^2 L_G.
	bSolve = func(r Vec) (Vec, error) {
		y, err := inner(r)
		if err != nil {
			return nil, err
		}
		y.Scale(1 / alpha) // (alpha*L_H)^+ = (1/alpha) L_H^+
		return y, nil
	}
	return lg, bSolve, alpha * alpha
}

func TestPreconChebyConvergesToTolerance(t *testing.T) {
	lg, bSolve, kappa := chebySetup(t, 0.5)
	b := meanFreeRandomVec(lg.Dim(), 18)
	want, err := LaplacianPseudoSolve(lg.Dense(), b)
	if err != nil {
		t.Fatal(err)
	}
	for _, eps := range []float64{0.5, 1e-2, 1e-6, 1e-10} {
		x, res, err := PreconCheby(lg, bSolve, b, ChebyOptions{Kappa: kappa, Eps: eps})
		if err != nil {
			t.Fatal(err)
		}
		diff := x.Sub(want)
		rel := lg.Norm(diff) / lg.Norm(want)
		if rel > eps {
			t.Fatalf("eps=%v: relative L_G-norm error %v after %d iterations", eps, rel, res.Iterations)
		}
	}
}

func TestPreconChebyIterationCountScaling(t *testing.T) {
	lg, bSolve, kappa := chebySetup(t, 0.5)
	b := meanFreeRandomVec(lg.Dim(), 19)
	var counts []int
	for _, eps := range []float64{1e-2, 1e-4, 1e-8} {
		_, res, err := PreconCheby(lg, bSolve, b, ChebyOptions{Kappa: kappa, Eps: eps})
		if err != nil {
			t.Fatal(err)
		}
		counts = append(counts, res.Iterations)
		if res.Iterations > ChebyIterationBound(kappa, eps) {
			t.Fatalf("iterations %d exceed theory bound %d", res.Iterations, ChebyIterationBound(kappa, eps))
		}
	}
	// Iterations must grow roughly linearly in log(1/eps): halving eps^2
	// should not multiply iterations by more than ~3.
	if counts[2] > 6*counts[0] {
		t.Fatalf("iteration growth too steep: %v", counts)
	}
}

func TestPreconChebyKappaOne(t *testing.T) {
	// B = A exactly: kappa = 1 takes the Richardson fast path.
	g := graph.Path(10)
	lg := NewLaplacian(g)
	bSolve := LaplacianCGSolver(lg, 1e-13)
	b := meanFreeRandomVec(10, 20)
	x, _, err := PreconCheby(lg, bSolve, b, ChebyOptions{Kappa: 1, Eps: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	want, err := LaplacianPseudoSolve(lg.Dense(), b)
	if err != nil {
		t.Fatal(err)
	}
	diff := x.Sub(want)
	if rel := lg.Norm(diff) / lg.Norm(want); rel > 1e-8 {
		t.Fatalf("kappa=1 error %v", rel)
	}
}

func TestPreconChebyOnIterationHook(t *testing.T) {
	lg, bSolve, kappa := chebySetup(t, 0.3)
	b := meanFreeRandomVec(lg.Dim(), 21)
	var hooks int
	_, res, err := PreconCheby(lg, bSolve, b, ChebyOptions{
		Kappa:       kappa,
		Eps:         1e-4,
		OnIteration: func() { hooks++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if hooks != res.Iterations {
		t.Fatalf("hook fired %d times for %d iterations", hooks, res.Iterations)
	}
}

func TestPreconChebyParameterValidation(t *testing.T) {
	lg := NewLaplacian(graph.Path(4))
	bSolve := LaplacianCGSolver(lg, 1e-12)
	b := NewVec(4)
	if _, _, err := PreconCheby(lg, bSolve, b, ChebyOptions{Kappa: 0.5, Eps: 0.1}); err == nil {
		t.Fatal("kappa < 1 should error")
	}
	if _, _, err := PreconCheby(lg, bSolve, b, ChebyOptions{Kappa: 2, Eps: 0.9}); err == nil {
		t.Fatal("eps > 1/2 should error")
	}
	if _, _, err := PreconCheby(lg, bSolve, NewVec(3), ChebyOptions{Kappa: 2, Eps: 0.1}); err == nil {
		t.Fatal("dimension mismatch should error")
	}
}

func TestChebyIterationBoundMonotone(t *testing.T) {
	if ChebyIterationBound(4, 1e-4) < ChebyIterationBound(4, 1e-2) {
		t.Fatal("bound should grow as eps shrinks")
	}
	if ChebyIterationBound(16, 1e-4) < ChebyIterationBound(4, 1e-4) {
		t.Fatal("bound should grow with kappa")
	}
	ratio := float64(ChebyIterationBound(100, 1e-6)) / float64(ChebyIterationBound(1, 1e-6))
	if ratio < 5 || ratio > 20 {
		t.Fatalf("sqrt(kappa) scaling off: ratio %v for kappa 100 vs 1", ratio)
	}
	_ = math.Sqrt // keep math import if constants change
}
