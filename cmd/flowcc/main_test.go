package main

import (
	"os"
	"path/filepath"
	"testing"

	"lapcc/internal/mcmf"
)

func TestAssignmentInstanceFeasible(t *testing.T) {
	dg, sigma := assignmentInstance(6, 6, 3, 10, 3)
	var sum int64
	for _, s := range sigma {
		sum += s
	}
	if sum != 0 {
		t.Fatalf("demands sum to %d", sum)
	}
	if _, _, err := mcmf.Solve(dg, sigma); err != nil {
		t.Fatalf("generated instance infeasible: %v", err)
	}
}

func TestReadArcsFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "arcs.txt")
	if err := os.WriteFile(path, []byte("0 1 5 2\n1 2 3\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	dg, err := readArcs(path)
	if err != nil {
		t.Fatal(err)
	}
	if dg.N() != 3 || dg.M() != 2 {
		t.Fatalf("n=%d m=%d", dg.N(), dg.M())
	}
	if _, err := readArcs(filepath.Join(dir, "missing.txt")); err == nil {
		t.Fatal("missing file accepted")
	}
}
