package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"reflect"
	"strings"
	"testing"
)

func TestRecCodecRoundTrip(t *testing.T) {
	recs := []Rec{
		{Kind: RecBegin, Name: "barrier-3"},
		{Kind: RecTraffic, Name: "shard", A: 42, B: 1 << 40},
		{Kind: RecMark, Name: "chaos-kill", Barrier: 7, Epoch: 2, Node: -1},
		{Kind: RecMark, Name: "replay", Barrier: 7, Epoch: 3, Node: 1},
		{Kind: RecEnd},
	}
	blob, err := AppendRecs(nil, recs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRecs(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("round trip diverged:\n in  %+v\n out %+v", recs, got)
	}

	// Append must extend, not replace.
	prefix := []byte{0xaa, 0xbb}
	blob2, err := AppendRecs(prefix, recs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob2[:2], prefix) || !bytes.Equal(blob2[2:], blob) {
		t.Fatal("AppendRecs did not append to the given buffer")
	}
}

func TestRecCodecEmpty(t *testing.T) {
	blob, err := AppendRecs(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRecs(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty stream decoded to %d recs", len(got))
	}
}

func TestRecCodecRejectsMalformed(t *testing.T) {
	valid, err := AppendRecs(nil, []Rec{{Kind: RecBegin, Name: "x"}})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"short header":        {1, 2},
		"truncated rec":       valid[:len(valid)-4],
		"trailing bytes":      append(append([]byte{}, valid...), 0),
		"absurd count":        binary.LittleEndian.AppendUint32(nil, maxRecs+1),
		"count exceeds bytes": binary.LittleEndian.AppendUint32(nil, 1000),
	}
	// A bad kind byte.
	badKind := append([]byte{}, valid...)
	badKind[4] = 99
	cases["bad kind"] = badKind

	for name, blob := range cases {
		if _, err := DecodeRecs(blob); !errors.Is(err, ErrBadRecs) {
			t.Errorf("%s: want ErrBadRecs, got %v", name, err)
		}
	}

	// Oversized name and rec count are refused at encode time too.
	if _, err := AppendRecs(nil, []Rec{{Kind: RecBegin, Name: strings.Repeat("n", maxRecName+1)}}); !errors.Is(err, ErrBadRecs) {
		t.Errorf("oversized name encoded: %v", err)
	}
	if _, err := AppendRecs(nil, make([]Rec, maxRecs+1)); !errors.Is(err, ErrBadRecs) {
		t.Errorf("oversized stream encoded: %v", err)
	}
}

// TestBufferStackDiscipline: the worker-side buffer balances itself — Take
// closes whatever is still open, unmatched Ends are dropped, and a nil
// buffer swallows everything at zero cost.
func TestBufferStackDiscipline(t *testing.T) {
	var nilBuf *Buffer
	nilBuf.Begin("x")
	nilBuf.Beginf("y-%d", 1)
	nilBuf.Traffic("t", 1, 2)
	nilBuf.Mark("m", 0, 0, -1)
	nilBuf.End()
	if nilBuf.Len() != 0 || nilBuf.Take() != nil {
		t.Fatal("nil buffer recorded something")
	}

	b := NewBuffer()
	b.End() // unbalanced: dropped
	b.Begin("outer")
	b.Beginf("inner-%d", 7)
	b.Traffic("shard", 3, 9)
	b.End()
	b.Mark("checkpoint", 5, 0, 2)
	// "outer" left open: Take closes it.
	recs := b.Take()
	want := []Rec{
		{Kind: RecBegin, Name: "outer"},
		{Kind: RecBegin, Name: "inner-7"},
		{Kind: RecTraffic, Name: "shard", A: 3, B: 9},
		{Kind: RecEnd},
		{Kind: RecMark, Name: "checkpoint", Barrier: 5, Node: 2},
		{Kind: RecEnd},
	}
	if !reflect.DeepEqual(recs, want) {
		t.Fatalf("buffered stream:\n got  %+v\n want %+v", recs, want)
	}
	if b.Len() != 0 {
		t.Fatal("Take did not reset the buffer")
	}
}

// TestMergeReplay: a worker stream replayed under a node subtree produces a
// schema-clean JSONL timeline with the worker's spans, traffic, and marks
// nested under the named root.
func TestMergeReplay(t *testing.T) {
	b := NewBuffer()
	b.Begin("barrier-0")
	b.Traffic("recv", 10, 100)
	b.Mark("shard-done", 0, 0, 2)
	// Leave barrier-0 open: Merge's root.End() must still balance the tree.
	stream := b.Take()

	tr := New()
	root := tr.Start("solve")
	tr.Merge("node-2", stream)
	tr.Merge("node-3", nil) // empty stream: no subtree at all
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if err := ValidateJSONL(strings.NewReader(out)); err != nil {
		t.Fatalf("merged timeline invalid: %v\n%s", err, out)
	}
	for _, want := range []string{
		`"name":"node-2"`, `"name":"barrier-0"`, `"name":"shard-done"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("merged timeline missing %s:\n%s", want, out)
		}
	}
	if strings.Contains(out, "node-3") {
		t.Fatal("empty stream still created a node-3 subtree")
	}

	// A nil tracer ignores the stream.
	var nilTr *Tracer
	nilTr.Merge("node-0", stream)
}

// TestMergeDeterministic: replaying the same worker streams in the same
// order twice yields byte-identical JSONL — the property the distributed
// merge contract rests on.
func TestMergeDeterministic(t *testing.T) {
	streams := make([][]Rec, 3)
	for p := range streams {
		b := NewBuffer()
		b.Beginf("barrier-%d", 0)
		b.Traffic("recv", int64(p), int64(p*10))
		b.End()
		streams[p] = b.Take()
	}
	render := func() string {
		tr := New()
		root := tr.Start("solve")
		for p, s := range streams {
			tr.Merge("node-"+string(rune('0'+p)), s)
		}
		root.End()
		var buf bytes.Buffer
		if err := tr.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if a, b := render(), render(); a != b {
		t.Fatalf("merge is not deterministic:\n%s\nvs\n%s", a, b)
	}
}
