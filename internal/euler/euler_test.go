package euler

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"lapcc/internal/graph"
	"lapcc/internal/rounds"
)

func TestOrientRejectsOddDegree(t *testing.T) {
	g := graph.Path(4)
	if _, _, err := Orient(g, nil, Options{}); !errors.Is(err, ErrNotEulerian) {
		t.Fatalf("error = %v, want ErrNotEulerian", err)
	}
}

func TestOrientEmptyGraph(t *testing.T) {
	g := graph.New(5)
	orient, st, err := Orient(g, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(orient) != 0 || st.States != 0 {
		t.Fatalf("empty graph gave %v, %+v", orient, st)
	}
}

func TestOrientSingleCycle(t *testing.T) {
	for _, n := range []int{3, 4, 5, 8, 17, 64} {
		g, err := graph.Cycle(n)
		if err != nil {
			t.Fatal(err)
		}
		orient, _, err := Orient(g, nil, Options{Ledger: rounds.New()})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if v := CheckOrientation(g, orient); v != -1 {
			t.Fatalf("n=%d: vertex %d unbalanced", n, v)
		}
	}
}

func TestOrientParallelEdges(t *testing.T) {
	g := graph.New(2)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(0, 1, 1)
	orient, _, err := Orient(g, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v := CheckOrientation(g, orient); v != -1 {
		t.Fatalf("vertex %d unbalanced", v)
	}
	if orient[0] == orient[1] {
		t.Fatal("parallel edge pair must be oriented oppositely")
	}
}

func TestOrientUnionOfCycles(t *testing.T) {
	g, err := graph.RandomEulerian(30, 8, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	led := rounds.New()
	orient, st, err := Orient(g, nil, Options{Ledger: led})
	if err != nil {
		t.Fatal(err)
	}
	if v := CheckOrientation(g, orient); v != -1 {
		t.Fatalf("vertex %d unbalanced", v)
	}
	if st.Iterations == 0 || led.Total() == 0 {
		t.Fatalf("suspicious stats: %+v, rounds %d", st, led.Total())
	}
}

func TestOrientCompleteGraphOddN(t *testing.T) {
	// K_n for odd n is Eulerian (all degrees n-1 even).
	g := graph.Complete(9)
	orient, _, err := Orient(g, nil, Options{Ledger: rounds.New()})
	if err != nil {
		t.Fatal(err)
	}
	if v := CheckOrientation(g, orient); v != -1 {
		t.Fatalf("vertex %d unbalanced", v)
	}
}

func TestOrientCostGuarantee(t *testing.T) {
	// With signed costs, every implicit cycle is oriented so its total
	// signed cost is <= 0; summing over cycles, the whole orientation's
	// signed cost must be <= 0.
	rng := rand.New(rand.NewSource(7))
	g, err := graph.RandomEulerian(24, 6, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	cost := make([]int64, g.M())
	for i := range cost {
		cost[i] = rng.Int63n(41) - 20
	}
	orient, _, err := Orient(g, cost, Options{Ledger: rounds.New()})
	if err != nil {
		t.Fatal(err)
	}
	if v := CheckOrientation(g, orient); v != -1 {
		t.Fatalf("vertex %d unbalanced", v)
	}
	var total int64
	for i := range cost {
		if orient[i] {
			total += cost[i]
		} else {
			total -= cost[i]
		}
	}
	if total > 0 {
		t.Fatalf("oriented signed cost %d > 0", total)
	}
}

func TestOrientForcedEdgeDirection(t *testing.T) {
	// A strongly negative cost on one edge forces its orientation U->V
	// (the flow-rounding rule for the (t,s) edge).
	g, err := graph.Cycle(6)
	if err != nil {
		t.Fatal(err)
	}
	cost := make([]int64, g.M())
	cost[2] = -(1 << 40)
	orient, _, err := Orient(g, cost, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !orient[2] {
		t.Fatal("edge with huge negative U->V cost was oriented V->U")
	}
	if v := CheckOrientation(g, orient); v != -1 {
		t.Fatalf("vertex %d unbalanced", v)
	}
}

func TestOrientRoundsScaling(t *testing.T) {
	// Theorem 1.4: O(log n log* n) rounds. Doubling n repeatedly must grow
	// rounds roughly additively (logarithmically), not multiplicatively.
	roundsAt := func(n int) int64 {
		g, err := graph.RandomEulerian(n, n/8+2, 3, 13)
		if err != nil {
			t.Fatal(err)
		}
		led := rounds.New()
		if _, _, err := Orient(g, nil, Options{Ledger: led}); err != nil {
			t.Fatal(err)
		}
		return led.Total()
	}
	r64 := roundsAt(64)
	r1024 := roundsAt(1024)
	// log(1024)/log(64) = 10/6; allow generous slack for log* and constant
	// factors but reject linear growth (16x).
	if r1024 > 6*r64 {
		t.Fatalf("rounds grew from %d (n=64) to %d (n=1024): faster than O(log n log* n)", r64, r1024)
	}
}

func TestCheckOrientationDetectsImbalance(t *testing.T) {
	g, err := graph.Cycle(4)
	if err != nil {
		t.Fatal(err)
	}
	// All edges oriented U->V on a cycle 0-1-2-3-0: edges (0,1),(1,2),(2,3),(0,3).
	// Orienting (0,3) as U->V = 0->3 breaks balance at 0 and 3... construct
	// a deliberately broken orientation and ensure detection.
	bad := []bool{true, true, true, true}
	if v := CheckOrientation(g, bad); v == -1 {
		t.Fatal("imbalanced orientation not detected")
	}
}

// Property: random Eulerian multigraphs always get a valid orientation with
// non-positive signed cost.
func TestOrientProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(24)
		g, err := graph.RandomEulerian(n, 1+rng.Intn(6), 3, seed)
		if err != nil {
			return false
		}
		cost := make([]int64, g.M())
		for i := range cost {
			cost[i] = rng.Int63n(21) - 10
		}
		orient, _, err := Orient(g, cost, Options{})
		if err != nil {
			return false
		}
		if CheckOrientation(g, orient) != -1 {
			return false
		}
		var total int64
		for i := range cost {
			if orient[i] {
				total += cost[i]
			} else {
				total -= cost[i]
			}
		}
		return total <= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
