package lapcc_test

// End-to-end observability test: the acceptance path of the metrics
// subsystem is "curl /metrics during a fault-injected run and see the
// engine, routing, reliable-delivery, and ledger families move". This test
// does exactly that — same debug server as the CLIs' -debug-addr flag,
// same registry wiring as core.RunOptions{Metrics} — and asserts on the
// scraped Prometheus text rather than on registry internals.

import (
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"lapcc/internal/cc"
	"lapcc/internal/core"
	"lapcc/internal/graph"
	"lapcc/internal/metrics"
)

func TestMetricsScrapeDuringFaultedRun(t *testing.T) {
	reg := metrics.NewRegistry()
	prev := cc.MetricsRegistry()
	cc.SetMetrics(reg)
	defer cc.SetMetrics(prev)
	srv, err := metrics.StartDebugServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// The BENCH_faults maxflow workload under a 1% drop plan.
	dg := graph.LayeredDAG(3, 4, 2, 8, 21)
	res, err := core.MaxFlowWith(dg, 0, dg.N()-1, core.RunOptions{
		Faults:  &cc.FaultPlan{Seed: 102, Drop: 0.01},
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}

	body := httpGet(t, "http://"+srv.Addr()+"/metrics")
	if !strings.Contains(body, "# TYPE lapcc_route_call_messages histogram") ||
		!strings.Contains(body, "lapcc_route_call_messages_bucket") {
		t.Error("scrape missing the routing histogram family")
	}
	for _, family := range []string{
		"lapcc_route_rounds_total",
		"lapcc_route_messages_total",
		"lapcc_reliable_waves_total",
		"lapcc_maxflow_runs_total",
		"lapcc_electrical_solves_total",
	} {
		if v := scrapedValue(t, body, family); v <= 0 {
			t.Errorf("%s = %v, want > 0", family, v)
		}
	}

	// The ledger mirror must agree exactly with the run's own report.
	measured := scrapedValue(t, body, `lapcc_ledger_rounds_total{kind="measured"}`)
	charged := scrapedValue(t, body, `lapcc_ledger_rounds_total{kind="charged"}`)
	if int64(measured+charged) != res.Rounds.Total {
		t.Errorf("ledger mirror %v measured + %v charged != reported total %d",
			measured, charged, res.Rounds.Total)
	}

	// The JSON snapshot serves the same data and parses.
	var snap map[string]any
	if err := json.Unmarshal([]byte(httpGet(t, "http://"+srv.Addr()+"/metrics.json")), &snap); err != nil {
		t.Fatalf("/metrics.json: %v", err)
	}

	// pprof is mounted (the index page, not a profile, to keep this fast).
	if !strings.Contains(httpGet(t, "http://"+srv.Addr()+"/debug/pprof/"), "profile") {
		t.Error("/debug/pprof/ index not served")
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func scrapedValue(t *testing.T, body, name string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\S+)$`)
	m := re.FindStringSubmatch(body)
	if m == nil {
		t.Fatalf("scrape has no sample %q", name)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("sample %q: %v", name, err)
	}
	return v
}
