# Build/verify entry points. `make check` is the CI gate: it checks
# formatting, vets, builds, runs the full test suite under the race detector
# (continuously validating the parallel engine and the concurrent round
# ledger), and smoke-runs every benchmark once so the benchmark programs
# themselves cannot rot.

GO ?= go

# Timing fidelity for the recorded benchmark suites (the BENCH_*.json
# baselines were recorded at 2s) and for the faster regression gate.
BENCHTIME      ?= 2s
GATE_BENCHTIME ?= 1s

# The recorded suites: one -bench regexp + package list per BENCH_*.json,
# shared by the human-facing bench-* targets and cmd/benchgate (which
# hardcodes the same pairs in internal/benchgate.Suites).
BENCH_ENGINE_BENCH := BenchmarkEngineRun|BenchmarkRoute
BENCH_ENGINE_PKGS  := ./internal/cc/
BENCH_SOLVER_BENCH := BenchmarkIPM|BenchmarkSolverSession
BENCH_SOLVER_PKGS  := ./internal/maxflow/ ./internal/lapsolver/
BENCH_SCALING_BENCH := BenchmarkScaling
BENCH_SCALING_PKGS  := ./internal/linalg/

# Common recipe: run one recorded benchmark suite with timing fidelity.
define run-bench
$(GO) test -run xxx -bench '$(1)' -benchmem -benchtime $(BENCHTIME) $(2)
endef

.PHONY: all build fmt-check vet test race bench-smoke bench-engine bench-baseline bench-solver bench-scaling bench-gate check experiments trace-smoke stress bench-faults serve-smoke net-smoke bench-net chaos-smoke bench-chaos

all: build

build:
	$(GO) build ./...

# Fail if any file is not gofmt-clean (prints the offenders).
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Run every benchmark exactly once as a smoke test (no timing fidelity).
bench-smoke:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# The engine/routing microbenchmarks behind BENCH_engine.json.
bench-engine:
	$(call run-bench,$(BENCH_ENGINE_BENCH),$(BENCH_ENGINE_PKGS))

# The session-layer benchmarks behind BENCH_solver.json: build-once/solve-many
# vs rebuild-per-solve through the max-flow IPM and the many-RHS solver.
bench-solver:
	$(call run-bench,$(BENCH_SOLVER_BENCH),$(BENCH_SOLVER_PKGS))

# The worker-scaling curve behind BENCH_scaling.json: blocked Laplacian
# matvec, blocked dot, and full CG at 1/2/4/8 workers. Figures depend on
# GOMAXPROCS; benchgate tags recorded names with @procs=N and only compares
# runs at matching procs.
bench-scaling:
	$(call run-bench,$(BENCH_SCALING_BENCH),$(BENCH_SCALING_PKGS))

# Refresh every recorded baseline: re-measures each suite at full fidelity
# and writes BENCH_<suite>.new.json next to the checked-in files (copy over
# the baseline to accept, restoring headline commentary where it changed).
bench-baseline:
	$(GO) run ./cmd/benchgate -write-only -benchtime $(BENCHTIME)

# Perf-regression gate: re-measure each suite, write BENCH_<suite>.new.json,
# and diff against the checked-in baselines — ns/op within 1.75x, B/op
# within 1.5x, allocs/op within 1.25x, fault-workload round counts exact.
# Non-zero exit on any regression.
bench-gate:
	$(GO) run ./cmd/benchgate -benchtime $(GATE_BENCHTIME)

experiments:
	$(GO) run ./cmd/experiments

# Fault-injection stress gate: the differential suite (bit-identical outputs
# under lossy FaultPlans, multiple plan seeds) plus the fault/reliable-layer
# unit tests, all under the race detector. See DESIGN.md §9.
stress:
	$(GO) test -race -count=1 -run 'FaultDifferential|ParallelDifferential' .
	$(GO) test -race -count=1 -run 'Fault|Reliable|Stall|Crash' ./internal/cc/
	$(GO) test -race -count=1 -run 'Concurrent|Parallel|Pool|Batch' ./internal/linalg/ ./internal/sparsify/ ./internal/electrical/

# Re-measure the reliable-delivery round overhead behind BENCH_faults.json.
bench-faults:
	$(GO) run ./cmd/experiments -run E13

# One traced solve per algorithm layer; validates the JSONL event stream
# against the schema and enforces the >= 95% span-attribution bar.
trace-smoke:
	$(GO) test -count=1 -run TestTraceSmoke ./internal/trace/

# Serving-layer smoke + gate: build lapccd, start it on a loopback port,
# replay the deterministic loadgen mix against it with -gate, and shut it
# down. The gate diffs the run's ns-per-request against BENCH_serve.json
# (seeded from the first run when missing) under the serve tolerance;
# per-op p50/p99 are printed and recorded but not gated — under
# concurrency they measure queueing luck, not solver speed. Unlike the
# timing suites, the aggregate figure at a generous ratio is stable
# enough to run everywhere, so this target is part of `make check`.
SERVE_ADDR ?= 127.0.0.1:18080

serve-smoke:
	@set -e; tmp=$$(mktemp -d); \
	$(GO) build -o $$tmp/lapccd ./cmd/lapccd; \
	$(GO) build -o $$tmp/loadgen ./cmd/loadgen; \
	$$tmp/lapccd -addr $(SERVE_ADDR) >$$tmp/lapccd.log 2>&1 & pid=$$!; \
	trap 'kill $$pid 2>/dev/null; rm -rf "$$tmp"' EXIT; \
	$$tmp/loadgen -base http://$(SERVE_ADDR) -gate

# Multi-process transport smoke + gate: build the worker binary and flowcc,
# solve the same max-flow instance (with an injected fault plan) through the
# in-process merge and through a 4-process TCP clique on loopback, and
# require byte-identical reports — flow value, IPM iteration counts, and the
# full charged-round breakdown. Exercises the subprocess spawn, mesh
# bootstrap, barrier, and shutdown paths end to end; the worker processes
# are owned and reaped by flowcc's coordinator, so teardown is just the
# temp dir.
net-smoke:
	@set -e; tmp=$$(mktemp -d); \
	trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/lapccnode ./cmd/lapccnode; \
	$(GO) build -o $$tmp/flowcc ./cmd/flowcc; \
	$$tmp/flowcc -algo maxflow -width 6 -faults seed=3,drop=0.02 >$$tmp/local.out; \
	$$tmp/flowcc -algo maxflow -width 6 -faults seed=3,drop=0.02 \
		-transport tcp,procs=4,bin=$$tmp/lapccnode | grep -v '^transport:' >$$tmp/tcp.out; \
	diff -u $$tmp/local.out $$tmp/tcp.out; \
	echo "net-smoke: OK (tcp output byte-identical to local)"

# Re-measure the per-backend delivery figures behind BENCH_net.json.
bench-net:
	$(GO) run ./cmd/benchgate -suites net

# Crash-recovery smoke + gate: solve the same max-flow instance (with an
# injected fault plan) through the in-process merge and through a
# *supervised* 4-process TCP clique whose chaos plan SIGKILLs worker 1
# before barrier 2 and worker 3 before barrier 5, resets 90% of epoch-0
# mesh writes (the first mesh incarnation always collapses), and fragments
# 10% of later writes. The supervisor respawns the workers, replays the
# failed barriers from the round checkpoint, and the report — flow value,
# IPM iterations, the full charged-round breakdown — must come out
# byte-identical to the undisturbed local run. Recovery bookkeeping prints
# on 'transport:' lines, which the diff filters. The chaotic run records a
# transport flight dump; on failure the outputs and the dump are preserved
# under .smoke-artifacts/ (CI uploads that directory) instead of vanishing
# with the temp dir.
chaos-smoke:
	@tmp=$$(mktemp -d); \
	( set -e; \
	  $(GO) build -o $$tmp/lapccnode ./cmd/lapccnode; \
	  $(GO) build -o $$tmp/flowcc ./cmd/flowcc; \
	  $$tmp/flowcc -algo maxflow -width 6 -faults seed=3,drop=0.02 >$$tmp/local.out; \
	  $$tmp/flowcc -algo maxflow -width 6 -faults seed=3,drop=0.02 \
		-transport tcp,procs=4,bin=$$tmp/lapccnode \
		-chaos 'seed=7,reset=0.9,partial=0.1,kill=2:1,kill=5:3' \
		-flight $$tmp/chaos.flight.jsonl 2>/dev/null \
		| grep -v '^transport:\|^flight:' >$$tmp/chaos.out; \
	  diff -u $$tmp/local.out $$tmp/chaos.out; \
	); status=$$?; \
	if [ $$status -ne 0 ]; then \
	  mkdir -p .smoke-artifacts; \
	  cp $$tmp/*.out $$tmp/*.flight.jsonl .smoke-artifacts/ 2>/dev/null || true; \
	  echo "chaos-smoke: FAILED (artifacts preserved in .smoke-artifacts/)"; \
	fi; \
	rm -rf "$$tmp"; \
	[ $$status -eq 0 ] && echo "chaos-smoke: OK (output under kills+resets byte-identical to local)"; \
	exit $$status

# Re-measure the kill-recovery overhead figures behind BENCH_chaos.json.
bench-chaos:
	$(GO) run ./cmd/benchgate -suites chaos

check: fmt-check vet build race bench-smoke trace-smoke serve-smoke net-smoke chaos-smoke
