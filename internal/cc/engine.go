// Package cc simulates the congested clique model of Lotker, Patt-Shamir,
// Pavlov, and Peleg [LPSPP05]: n processors communicate in synchronous
// rounds, and in each round every ordered pair of nodes may exchange one
// message of O(log n) bits.
//
// The simulator enforces the model's two constraints — at most one message
// per ordered pair per round, and a bounded number of machine words per
// message (a constant number of words is O(log n) bits for any realistic n)
// — and counts rounds. Algorithms are expressed as per-node step functions;
// the engine runs them in lockstep and delivers messages at round
// boundaries, exactly as the synchronous model prescribes.
package cc

import (
	"errors"
	"fmt"
)

// DefaultMaxWords is the default per-message budget in 64-bit words. Three
// words comfortably encode (tag, key, value) triples and is O(log n) bits.
const DefaultMaxWords = 3

// Message is a message delivered to a node at the start of a round.
type Message struct {
	From int
	Data []int64
}

// Step is a per-node program step. The engine calls it once per node per
// round with the messages that arrived at the start of the round. The node
// sends messages via send (delivered at the start of the next round) and
// returns true when it is done. A node that has returned done is still shown
// late-arriving messages and may resume work by returning false again.
type Step func(node, round int, inbox []Message, send func(to int, data ...int64)) (done bool)

// Engine runs step-function programs on a simulated clique.
type Engine struct {
	n         int
	maxWords  int
	rounds    int64
	messages  int64
	broadcast bool
}

// Model violations are errors, not panics: an algorithm exceeding the
// bandwidth budget is a bug the tests assert on ("failure injection" for
// this non-faulty model).
var (
	// ErrMessageTooWide reports a message exceeding the per-message word budget.
	ErrMessageTooWide = errors.New("cc: message exceeds word budget")
	// ErrDuplicatePair reports two messages on the same ordered pair in one round.
	ErrDuplicatePair = errors.New("cc: more than one message on an ordered pair in one round")
	// ErrBadRecipient reports a send to an out-of-range node.
	ErrBadRecipient = errors.New("cc: recipient out of range")
	// ErrRoundLimit reports that a program exceeded its round budget.
	ErrRoundLimit = errors.New("cc: round limit exceeded")
	// ErrNotBroadcast reports distinct per-recipient messages in Broadcast
	// Congested Clique mode.
	ErrNotBroadcast = errors.New("cc: node sent distinct messages in one round (BCC mode)")
)

// NewEngine returns a clique of n nodes with the default message width.
func NewEngine(n int) *Engine {
	return &Engine{n: n, maxWords: DefaultMaxWords}
}

// N returns the number of nodes.
func (e *Engine) N() int { return e.n }

// Rounds returns the number of communication rounds executed so far.
func (e *Engine) Rounds() int64 { return e.rounds }

// Messages returns the total number of messages delivered so far — the
// message-complexity counterpart to Rounds.
func (e *Engine) Messages() int64 { return e.messages }

// SetMaxWords overrides the per-message word budget (for tests).
func (e *Engine) SetMaxWords(w int) { e.maxWords = w }

// SetBroadcastOnly switches the engine into the Broadcast Congested Clique
// model [DKO12]: in each round, every node must send the *same* message to
// all other nodes. The paper's section 1.1 discusses why Eulerian
// orientation — and hence flow rounding — seems hard under this
// restriction; the simulator makes the restriction checkable.
func (e *Engine) SetBroadcastOnly(b bool) { e.broadcast = b }

// Run executes the program until every node reports done in the same round
// and no messages are in flight, or until maxRounds communication rounds
// have been used. It returns the number of rounds consumed by this run.
func (e *Engine) Run(step Step, maxRounds int) (int64, error) {
	inboxes := make([][]Message, e.n)
	start := e.rounds
	for r := 0; ; r++ {
		if int64(r) >= int64(maxRounds) {
			return e.rounds - start, fmt.Errorf("%w: %d rounds", ErrRoundLimit, maxRounds)
		}
		next := make([][]Message, e.n)
		sentPair := make(map[[2]int]bool)
		firstData := make(map[int][]int64) // BCC: the round's message per node
		var sendErr error
		allDone := true
		anySent := false
		for v := 0; v < e.n; v++ {
			node := v
			send := func(to int, data ...int64) {
				if sendErr != nil {
					return
				}
				if to < 0 || to >= e.n || to == node {
					sendErr = fmt.Errorf("%w: node %d -> %d (n=%d)", ErrBadRecipient, node, to, e.n)
					return
				}
				if len(data) > e.maxWords {
					sendErr = fmt.Errorf("%w: node %d sent %d words (budget %d)",
						ErrMessageTooWide, node, len(data), e.maxWords)
					return
				}
				if e.broadcast {
					if prev, ok := firstData[node]; ok {
						if !equalWords(prev, data) {
							sendErr = fmt.Errorf("%w: node %d in round %d", ErrNotBroadcast, node, r)
							return
						}
					} else {
						firstData[node] = append([]int64(nil), data...)
					}
				}
				key := [2]int{node, to}
				if sentPair[key] {
					sendErr = fmt.Errorf("%w: %d -> %d in round %d", ErrDuplicatePair, node, to, r)
					return
				}
				sentPair[key] = true
				anySent = true
				e.messages++
				next[to] = append(next[to], Message{From: node, Data: append([]int64(nil), data...)})
			}
			if !step(node, r, inboxes[v], send) {
				allDone = false
			}
			if sendErr != nil {
				return e.rounds - start, sendErr
			}
		}
		if allDone && !anySent {
			// The final step consumed no communication; it is internal
			// computation and costs no round.
			return e.rounds - start, nil
		}
		e.rounds++
		inboxes = next
	}
}

func equalWords(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
